/**
 * @file
 * Tests for chf::AutoTuner (src/tuner/auto_tuner.h): report determinism
 * across runs and thread counts, Pareto-front correctness, the trial
 * budget, greedy refinement, and the semantics guarantee that every
 * candidate preserves the oracle result (the tuner fatals otherwise,
 * so a completed tune() implies it held).
 */

#include <gtest/gtest.h>

#include "tuner/auto_tuner.h"
#include "workloads/workloads.h"

namespace chf {
namespace {

/** Small search over a small workload, fast enough for tier-1. */
TunerOptions
smallSpace()
{
    TunerOptions opts;
    opts.policies = {PolicyKind::BreadthFirst, PolicyKind::Vliw};
    opts.maxInstsGrid = {64, 128};
    opts.spillHeadroomGrid = {4};
    opts.greedyRounds = 1;
    return opts;
}

TunerReport
tuneWorkload(const char *name, TunerOptions opts)
{
    const Workload *workload = findWorkload(name);
    EXPECT_NE(workload, nullptr) << name;
    Program program = buildWorkload(*workload);
    ProfileData profile = prepareProgram(program);
    return AutoTuner(std::move(opts)).tune(program, profile);
}

TEST(AutoTuner, GridCoversPolicyCrossKnobSpace)
{
    TunerReport report = tuneWorkload("sieve", smallSpace());
    // 2 policies x 2 maxInsts x 1 headroom, plus whatever refinement
    // added on top.
    ASSERT_GE(report.points.size(), 4u);
    EXPECT_EQ(report.truncated, 0u);
    EXPECT_GT(report.baselineInsts, 0u);
    for (const TunerPoint &p : report.points) {
        EXPECT_GT(p.blocks, 0u);
        EXPECT_GT(p.cycles, 0u);
        EXPECT_GT(p.codeGrowth, 0.0);
    }
}

TEST(AutoTuner, ReportIsDeterministicAcrossRunsAndThreads)
{
    std::string sequential =
        tuneWorkload("sieve", smallSpace()).toJson("sieve");
    std::string repeat =
        tuneWorkload("sieve", smallSpace()).toJson("sieve");
    EXPECT_EQ(sequential, repeat);

    TunerOptions parallel = smallSpace();
    parallel.threads = 4;
    std::string threaded =
        tuneWorkload("sieve", parallel).toJson("sieve");
    EXPECT_EQ(sequential, threaded);
}

TEST(AutoTuner, ParetoFrontIsExactlyTheNonDominatedSet)
{
    TunerReport report = tuneWorkload("bzip2_3", smallSpace());

    auto dominates = [](const TunerPoint &p, const TunerPoint &q) {
        bool no_worse = p.blocks <= q.blocks &&
                        p.codeGrowth <= q.codeGrowth &&
                        p.cycles <= q.cycles;
        bool better = p.blocks < q.blocks ||
                      p.codeGrowth < q.codeGrowth || p.cycles < q.cycles;
        return no_worse && better;
    };

    ASSERT_FALSE(report.paretoFront.empty());
    for (size_t i = 0; i < report.points.size(); ++i) {
        bool dominated = false;
        for (const TunerPoint &other : report.points)
            dominated |= dominates(other, report.points[i]);
        EXPECT_EQ(report.points[i].pareto, !dominated) << i;
    }
    // The flags and the index list must agree.
    std::vector<size_t> flagged;
    for (size_t i = 0; i < report.points.size(); ++i)
        if (report.points[i].pareto)
            flagged.push_back(i);
    EXPECT_EQ(flagged, report.paretoFront);
}

TEST(AutoTuner, BestHasFewestCyclesAndIsOnTheFront)
{
    TunerReport report = tuneWorkload("sieve", smallSpace());
    const TunerPoint &best = report.points[report.best];
    for (const TunerPoint &p : report.points)
        EXPECT_GE(p.cycles, best.cycles);
    // A cycle-minimal point cannot be dominated on the cycles axis.
    EXPECT_TRUE(best.pareto);
}

TEST(AutoTuner, TrialBudgetTruncatesTheGrid)
{
    TunerOptions opts = smallSpace();
    opts.maxTrials = 2;
    opts.greedyRounds = 0;
    TunerReport report = tuneWorkload("sieve", opts);
    EXPECT_EQ(report.points.size(), 2u);
    EXPECT_EQ(report.truncated, 2u); // 4-candidate grid, budget 2
}

TEST(AutoTuner, GreedyRefinementAddsNeighborsOfTheIncumbent)
{
    TunerOptions no_refine = smallSpace();
    no_refine.greedyRounds = 0;
    TunerOptions refine = smallSpace();
    refine.greedyRounds = 2;

    size_t base = tuneWorkload("sieve", no_refine).points.size();
    size_t refined = tuneWorkload("sieve", refine).points.size();
    EXPECT_GT(refined, base);
}

TEST(AutoTuner, SyntheticTargetsTuneToo)
{
    // The sweep bench runs the tuner over the whole registry; pin the
    // non-trivial base-target path here with the smallest one.
    TunerOptions opts;
    opts.policies = {PolicyKind::BreadthFirst};
    opts.baseTarget = *findTarget("small-block");
    opts.maxInstsGrid = {16, 32};
    opts.greedyRounds = 1;
    TunerReport report = tuneWorkload("vadd", opts);
    ASSERT_GE(report.points.size(), 2u);
    for (const TunerPoint &p : report.points)
        EXPECT_EQ(p.target.name, "small-block");
}

TEST(AutoTuner, InvalidGridVariantsAreSkippedNotEvaluated)
{
    // A grid value that breaks the model (headroom >= maxInsts) is
    // dropped during candidate generation, not compiled.
    TunerOptions opts;
    opts.policies = {PolicyKind::BreadthFirst};
    opts.maxInstsGrid = {2, 128}; // 2 < default spillHeadroom 4
    opts.spillHeadroomGrid = {4};
    opts.greedyRounds = 0;
    TunerReport report = tuneWorkload("vadd", opts);
    ASSERT_EQ(report.points.size(), 1u);
    EXPECT_EQ(report.points[0].target.maxInsts, 128u);
}

} // namespace
} // namespace chf
