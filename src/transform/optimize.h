/**
 * @file
 * The Optimize step of MergeBlocks (paper Fig. 5) and the discrete "O"
 * phase: a short pipeline of copy propagation, value numbering,
 * predicate optimization, and dead code elimination.
 */

#ifndef CHF_TRANSFORM_OPTIMIZE_H
#define CHF_TRANSFORM_OPTIMIZE_H

#include "ir/function.h"
#include "support/bitvector.h"

namespace chf {

/**
 * Optimize a single block in place given its live-out set. Used on the
 * scratch merged block inside MergeBlocks. @return total changes.
 */
size_t optimizeBlock(Function &fn, BasicBlock &bb,
                     const BitVector &live_out);

/**
 * Whole-function scalar optimization (the discrete "O" phase of the
 * paper's pipelines). @return total changes.
 */
size_t optimizeFunction(Function &fn);

} // namespace chf

#endif // CHF_TRANSFORM_OPTIMIZE_H
