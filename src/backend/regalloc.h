/**
 * @file
 * Register allocation for a TRIPS-like target.
 *
 * Within an EDGE block, temporaries communicate directly between
 * instructions and consume no architectural registers; only values
 * live *across* blocks need one of the 128 registers (paper §9, "Basic
 * block splitting": "temporary values do not consume architectural
 * registers due to direct instruction communication"). The allocator
 * therefore assigns physical registers only to cross-block live
 * values, spilling the coldest ones to a reserved memory region when
 * demand exceeds the file. Spill code can push a block over the
 * structural limits, in which case the block is split (reverse
 * if-conversion, paper §6) and allocation re-validated.
 */

#ifndef CHF_BACKEND_REGALLOC_H
#define CHF_BACKEND_REGALLOC_H

#include <map>

#include "hyperblock/constraints.h"
#include "ir/program.h"

namespace chf {

/** Allocation configuration. */
struct RegAllocOptions
{
    size_t numPhysRegs = 128;

    /** Target description; bounds the post-spill block splitting and
     *  (via the caller) numPhysRegs. Defaults to the TRIPS model. */
    TargetModel target;
};

/** Allocation outcome. */
struct RegAllocResult
{
    /** Cross-block vreg -> physical register (spilled regs absent). */
    std::map<Vreg, uint32_t> assignment;

    size_t crossBlockValues = 0;
    size_t spilledValues = 0;
    size_t spillInstsInserted = 0;
    size_t blocksSplit = 0;
};

/**
 * Allocate registers for @p program, inserting spill code and
 * splitting blocks as needed. The memory image gains (or reuses) a
 * "spill" region.
 */
RegAllocResult allocateRegisters(Program &program,
                                 const RegAllocOptions &options = {});

} // namespace chf

#endif // CHF_BACKEND_REGALLOC_H
