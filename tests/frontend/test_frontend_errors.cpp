/**
 * @file
 * Front-end error paths: TinyC rejects malformed and unsupported
 * programs with a fatal diagnostic (exit code 1), never silently
 * miscompiling.
 */

#include <gtest/gtest.h>

#include "frontend/lowering.h"
#include "frontend/parser.h"

namespace chf {
namespace {

void
compile(const char *source)
{
    compileTinyC(source);
}

using FrontendDeath = ::testing::Test;

TEST(FrontendDeath, LexerRejectsBadCharacter)
{
    EXPECT_EXIT(compile("int main() { return 1 @ 2; }"),
                ::testing::ExitedWithCode(1), "unexpected character");
}

TEST(FrontendDeath, LexerRejectsUnterminatedComment)
{
    EXPECT_EXIT(compile("int main() { /* oops"),
                ::testing::ExitedWithCode(1), "unterminated comment");
}

TEST(FrontendDeath, ParserRejectsMissingSemicolon)
{
    EXPECT_EXIT(compile("int main() { int x = 1 return x; }"),
                ::testing::ExitedWithCode(1), "expected");
}

TEST(FrontendDeath, ParserRejectsUnbalancedBraces)
{
    EXPECT_EXIT(compile("int main() { if (1) { return 1; }"),
                ::testing::ExitedWithCode(1), "unterminated block");
}

TEST(FrontendDeath, LoweringRejectsUnknownVariable)
{
    EXPECT_EXIT(compile("int main() { return nope; }"),
                ::testing::ExitedWithCode(1), "unknown variable");
}

TEST(FrontendDeath, LoweringRejectsUnknownFunction)
{
    EXPECT_EXIT(compile("int main() { return nope(3); }"),
                ::testing::ExitedWithCode(1), "unknown function");
}

TEST(FrontendDeath, LoweringRejectsRecursion)
{
    EXPECT_EXIT(compile("int f(int x) { return f(x - 1); }\n"
                        "int main() { return f(3); }"),
                ::testing::ExitedWithCode(1), "recursive");
}

TEST(FrontendDeath, LoweringRejectsArityMismatch)
{
    EXPECT_EXIT(compile("int f(int a, int b) { return a + b; }\n"
                        "int main() { return f(1); }"),
                ::testing::ExitedWithCode(1), "expects 2 arguments");
}

TEST(FrontendDeath, LoweringRejectsIndexingScalar)
{
    EXPECT_EXIT(compile("int g;\nint main() { return g[0]; }"),
                ::testing::ExitedWithCode(1), "not an array");
}

TEST(FrontendDeath, LoweringRejectsBreakOutsideLoop)
{
    EXPECT_EXIT(compile("int main() { break; }"),
                ::testing::ExitedWithCode(1), "break outside loop");
}

TEST(FrontendDeath, LoweringRejectsRedeclaration)
{
    EXPECT_EXIT(compile("int main() { int x = 1; int x = 2; return x; }"),
                ::testing::ExitedWithCode(1), "redeclaration");
}

TEST(FrontendDeath, LoweringRejectsMissingMain)
{
    EXPECT_EXIT(compile("int helper() { return 1; }"),
                ::testing::ExitedWithCode(1), "no function named");
}

TEST(FrontendDeath, ParserRejectsTooManyInitializers)
{
    EXPECT_EXIT(compile("int a[2] = {1, 2, 3};\n"
                        "int main() { return a[0]; }"),
                ::testing::ExitedWithCode(1), "too many initializers");
}

} // namespace
} // namespace chf
