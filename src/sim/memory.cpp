#include "sim/memory.h"

#include <algorithm>

#include "support/fatal.h"

namespace chf {

int64_t
MemoryImage::allocate(const std::string &name, int64_t size)
{
    CHF_ASSERT(size >= 0, "negative region size");
    for (const auto &g : globals) {
        if (g.name == name)
            fatal(concat("duplicate global region: ", name));
    }
    GlobalRegion region;
    region.name = name;
    region.base = nextFree;
    region.size = size;
    globals.push_back(region);
    nextFree += size;
    ensure(nextFree);
    return region.base;
}

const GlobalRegion &
MemoryImage::region(const std::string &name) const
{
    for (const auto &g : globals) {
        if (g.name == name)
            return g;
    }
    fatal(concat("unknown global region: ", name));
}

bool
MemoryImage::hasRegion(const std::string &name) const
{
    for (const auto &g : globals) {
        if (g.name == name)
            return true;
    }
    return false;
}

int64_t
MemoryImage::read(int64_t addr) const
{
    // Reads never grow the image and out-of-image reads return zero:
    // speculatively issued (unpredicated) loads may compute wild
    // addresses from stale operands, and their results are only
    // observed by correctly guarded consumers.
    if (addr < 0 || addr >= static_cast<int64_t>(data.size()))
        return 0;
    return data[addr];
}

void
MemoryImage::write(int64_t addr, int64_t value)
{
    if (addr < 0)
        fatal(concat("memory write at negative address ", addr));
    if (addr >= (int64_t(1) << 26))
        fatal(concat("memory write beyond image cap at ", addr));
    ensure(addr + 1);
    data[addr] = value;
}

int64_t
MemoryImage::readIn(const std::string &name, int64_t index) const
{
    const GlobalRegion &g = region(name);
    CHF_ASSERT(index >= 0 && index < g.size, "region index out of range");
    return read(g.base + index);
}

void
MemoryImage::writeIn(const std::string &name, int64_t index, int64_t value)
{
    const GlobalRegion &g = region(name);
    CHF_ASSERT(index >= 0 && index < g.size, "region index out of range");
    write(g.base + index, value);
}

void
MemoryImage::fillRegion(const std::string &name,
                        const std::vector<int64_t> &values)
{
    const GlobalRegion &g = region(name);
    for (int64_t i = 0; i < g.size; ++i) {
        int64_t v = i < static_cast<int64_t>(values.size()) ? values[i] : 0;
        write(g.base + i, v);
    }
}

uint64_t
MemoryImage::hash() const
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (int64_t w : data) {
        h ^= static_cast<uint64_t>(w);
        h *= 0x100000001b3ull;
    }
    return h;
}

uint64_t
MemoryImage::userHash() const
{
    int64_t end = static_cast<int64_t>(data.size());
    if (hasRegion("spill"))
        end = std::min(end, region("spill").base);
    uint64_t h = 0xcbf29ce484222325ull;
    for (int64_t i = 0; i < end; ++i) {
        h ^= static_cast<uint64_t>(data[i]);
        h *= 0x100000001b3ull;
    }
    return h;
}

void
MemoryImage::ensure(int64_t addr) const
{
    if (addr > static_cast<int64_t>(data.size()))
        data.resize(addr, 0);
}

} // namespace chf
