#include "transform/copy_prop.h"

#include <algorithm>
#include <map>

#include "analysis/liveness.h"

namespace chf {

size_t
copyPropagateBlock(BasicBlock &bb, CopyPropScratch *scratch,
                   size_t begin)
{
    // Dense map from copy destination to its source operand, valid
    // until either side is redefined. Epoch stamping makes the
    // cross-call reset O(1); the active list bounds invalidation scans
    // to destinations actually touched in this block.
    CopyPropScratch local;
    CopyPropScratch &t = scratch ? *scratch : local;
    if (++t.epoch == 0) {
        // Stamp wraparound (2^32 calls): flush everything once.
        std::fill(t.stamp.begin(), t.stamp.end(), 0u);
        t.epoch = 1;
    }
    t.active.clear();
    size_t rewritten = 0;

    auto lookup = [&](Vreg v) -> const Operand * {
        if (v < t.stamp.size() && t.stamp[v] == t.epoch)
            return &t.value[v];
        return nullptr;
    };
    auto invalidate = [&](Vreg v) {
        if (v < t.stamp.size() && t.stamp[v] == t.epoch)
            t.stamp[v] = 0;
        for (Vreg a : t.active) {
            if (t.stamp[a] == t.epoch && t.value[a].isReg() &&
                t.value[a].reg == v) {
                t.stamp[a] = 0;
            }
        }
    };
    auto insert = [&](Vreg dest, const Operand &src) {
        if (dest >= t.stamp.size()) {
            t.stamp.resize(dest + 1, 0u);
            t.value.resize(dest + 1);
        }
        t.value[dest] = src;
        t.stamp[dest] = t.epoch;
        t.active.push_back(dest);
    };

    if (begin > bb.insts.size())
        begin = bb.insts.size();

    // Warm-up over the fixpoint prefix [0, begin): on a prefix where
    // the full pass makes zero rewrites, the lookups are no-ops, so
    // only the table maintenance (invalidate + insert) needs to run.
    // A rewrite always changes instruction bytes (the table never maps
    // a register to itself), so "zero changes" really implies "no
    // lookup hits".
    for (size_t wi = 0; wi < begin; ++wi) {
        const Instruction &inst = bb.insts[wi];
        if (inst.hasDest()) {
            invalidate(inst.dest);
            if (inst.op == Opcode::Mov && !inst.pred.valid() &&
                !(inst.srcs[0].isReg() &&
                  inst.srcs[0].reg == inst.dest)) {
                insert(inst.dest, inst.srcs[0]);
            }
        }
    }

    for (size_t ii = begin; ii < bb.insts.size(); ++ii) {
        Instruction &inst = bb.insts[ii];
        // Rewrite register sources.
        for (int i = 0; i < inst.numSrcs(); ++i) {
            if (!inst.srcs[i].isReg())
                continue;
            if (const Operand *src = lookup(inst.srcs[i].reg)) {
                inst.srcs[i] = *src;
                ++rewritten;
            }
        }
        // Rewrite the predicate register only when the copy source is
        // itself a register (predicates cannot hold immediates).
        if (inst.pred.valid()) {
            const Operand *src = lookup(inst.pred.reg);
            if (src && src->isReg()) {
                inst.pred.reg = src->reg;
                ++rewritten;
            }
        }

        if (inst.hasDest()) {
            invalidate(inst.dest);
            if (inst.op == Opcode::Mov && !inst.pred.valid() &&
                !(inst.srcs[0].isReg() && inst.srcs[0].reg == inst.dest)) {
                insert(inst.dest, inst.srcs[0]);
            }
        }
    }
    return rewritten;
}

size_t
copyPropagateFunction(Function &fn)
{
    size_t total = 0;
    for (BlockId id : fn.blockIds())
        total += copyPropagateBlock(*fn.block(id));
    return total;
}

size_t
coalesceMoves(BasicBlock &bb, const BitVector &live_out,
              CoalesceScratch *scratch, size_t *min_touched)
{
    size_t nv = live_out.size();

    // Per-register def counts, use counts, and predicate-use flags,
    // epoch-stamped: a register's slots are zeroed on first touch, so
    // a call costs O(registers mentioned) instead of O(numVregs).
    CoalesceScratch local;
    CoalesceScratch &sc = scratch ? *scratch : local;
    if (++sc.epoch == 0) {
        std::fill(sc.stamp.begin(), sc.stamp.end(), 0u);
        sc.epoch = 1;
    }
    if (sc.stamp.size() < nv) {
        sc.stamp.resize(nv, 0u);
        sc.defs.resize(nv, 0u);
        sc.uses.resize(nv, 0u);
        sc.predUse.resize(nv, 0u);
    }
    auto touch = [&](Vreg v) {
        if (sc.stamp[v] != sc.epoch) {
            sc.stamp[v] = sc.epoch;
            sc.defs[v] = 0;
            sc.uses[v] = 0;
            sc.predUse[v] = 0;
        }
    };
    for (const auto &inst : bb.insts) {
        for (int s = 0; s < inst.numSrcs(); ++s) {
            if (inst.srcs[s].isReg() && inst.srcs[s].reg < nv) {
                touch(inst.srcs[s].reg);
                sc.uses[inst.srcs[s].reg]++;
            }
        }
        if (inst.pred.valid() && inst.pred.reg < nv) {
            touch(inst.pred.reg);
            sc.predUse[inst.pred.reg] = 1;
        }
        if (inst.hasDest() && inst.dest < nv) {
            touch(inst.dest);
            sc.defs[inst.dest]++;
        }
    }

    size_t coalesced = 0;
    size_t first_touched = bb.insts.size();
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t j = 0; j < bb.insts.size(); ++j) {
            const Instruction &mov = bb.insts[j];
            if (mov.op != Opcode::Mov || mov.pred.valid() ||
                !mov.srcs[0].isReg()) {
                continue;
            }
            Vreg t = mov.srcs[0].reg;
            Vreg x = mov.dest;
            if (t == x || t >= nv || x >= nv)
                continue;
            // t must be a one-def, one-use (this mov) local temporary.
            touch(t);
            if (sc.defs[t] != 1 || sc.uses[t] != 1 || sc.predUse[t] ||
                live_out.test(t)) {
                continue;
            }
            // Locate t's def before the mov.
            size_t i = j;
            bool found = false;
            while (i-- > 0) {
                if (bb.insts[i].hasDest() && bb.insts[i].dest == t) {
                    found = true;
                    break;
                }
            }
            if (!found || bb.insts[i].pred.valid() ||
                bb.insts[i].isBranch()) {
                continue;
            }
            // x must be untouched between the def and the mov.
            bool interference = false;
            for (size_t k = i + 1; k < j && !interference; ++k) {
                const Instruction &mid = bb.insts[k];
                if (mid.hasDest() && mid.dest == x)
                    interference = true;
                mid.forEachUse([&](Vreg v) {
                    if (v == x)
                        interference = true;
                });
            }
            if (interference)
                continue;

            bb.insts[i].dest = x;
            bb.insts.erase(bb.insts.begin() + static_cast<long>(j));
            // Exact count update replacing the old full recount: the
            // def at i moved from t to x (defs[t]--, defs[x]++) and
            // the erased mov dropped one use of t and one def of x
            // (uses[t]--, defs[x]--), so x's counts are net unchanged
            // and no predicate use was added or removed.
            sc.defs[t]--;
            sc.uses[t]--;
            ++coalesced;
            changed = true;
            if (i < first_touched)
                first_touched = i;
            break;
        }
    }
    if (min_touched)
        *min_touched = coalesced > 0 ? first_touched : bb.insts.size();
    return coalesced;
}

size_t
coalesceMovesFunction(Function &fn)
{
    Liveness liveness(fn);
    size_t total = 0;
    for (BlockId id : fn.blockIds()) {
        BasicBlock *bb = fn.block(id);
        total += coalesceMoves(*bb, liveness.liveOutOf(fn, *bb));
    }
    return total;
}

} // namespace chf
