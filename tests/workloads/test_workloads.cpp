/**
 * @file
 * Workload registry tests: both suites compile, run deterministically,
 * do real work, and exhibit the control-flow structure their paper
 * counterparts are chosen for.
 */

#include <gtest/gtest.h>

#include "analysis/loops.h"
#include "hyperblock/phase_ordering.h"
#include "ir/verifier.h"
#include "sim/functional_sim.h"
#include "workloads/workloads.h"

namespace chf {
namespace {

TEST(Workloads, SuiteSizesMatchThePaper)
{
    EXPECT_EQ(microbenchmarks().size(), 24u); // Table 1 / Table 2 rows
    EXPECT_EQ(speclikeBenchmarks().size(), 19u); // Table 3 rows
}

TEST(Workloads, NamesAreUniqueAndFindable)
{
    std::set<std::string> names;
    for (const auto &w : microbenchmarks()) {
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
        EXPECT_EQ(findWorkload(w.name), &w);
    }
    for (const auto &w : speclikeBenchmarks()) {
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
        EXPECT_EQ(findWorkload(w.name), &w);
    }
    EXPECT_EQ(findWorkload("no-such-benchmark"), nullptr);
}

class WorkloadBuild : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadBuild, CompilesRunsAndIsDeterministic)
{
    const Workload *w = findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    EXPECT_FALSE(w->note.empty());

    Program p1 = buildWorkload(*w);
    EXPECT_TRUE(verify(p1.fn).empty());
    FuncSimResult r1 = runFunctional(p1);

    Program p2 = buildWorkload(*w);
    FuncSimResult r2 = runFunctional(p2);

    EXPECT_EQ(r1.returnValue, r2.returnValue);
    EXPECT_EQ(r1.memoryHash, r2.memoryHash);
    // Real work: thousands of instructions, bounded for test speed.
    EXPECT_GT(r1.instsExecuted, 1000u);
    EXPECT_LT(r1.blocksExecuted, 2'000'000u);
}

std::vector<std::string>
allNames()
{
    std::vector<std::string> names;
    for (const auto &w : microbenchmarks())
        names.push_back(w.name);
    for (const auto &w : speclikeBenchmarks())
        names.push_back(w.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadBuild,
                         ::testing::ValuesIn(allNames()),
                         [](const auto &info) { return info.param; });

TEST(Workloads, AmmpHasLowTripWhileLoops)
{
    // The paper calls ammp "the best candidate for head duplication"
    // because of its low-trip-count while loops; our rendition must
    // exhibit that structure or the Table 1 story falls apart.
    Program p = buildWorkload(*findWorkload("ammp_1"));
    ProfileData profile = prepareProgram(p);
    LoopInfo loops(p.fn);
    bool found_low_trip = false;
    for (const Loop &loop : loops.loops()) {
        double mean = profile.trips.meanTrips(loop.header);
        if (mean > 0.0 && mean < 4.0)
            found_low_trip = true;
    }
    EXPECT_TRUE(found_low_trip);
}

TEST(Workloads, Bzip2_3HasRareSideBlock)
{
    // bzip2_3's defining feature: a loop containing an infrequently
    // taken block (so DF/VLIW exclude it and must tail-duplicate the
    // induction update).
    Program p = buildWorkload(*findWorkload("bzip2_3"));
    ProfileData profile = prepareProgram(p);
    (void)profile;

    bool found_rare_arm = false;
    for (BlockId id : p.fn.blockIds()) {
        const BasicBlock *bb = p.fn.block(id);
        auto succs = bb->successors();
        if (succs.size() != 2)
            continue;
        double f0 = 0, f1 = 0;
        for (const auto &inst : bb->insts) {
            if (inst.op == Opcode::Br && inst.target == succs[0])
                f0 += inst.freq;
            if (inst.op == Opcode::Br && inst.target == succs[1])
                f1 += inst.freq;
        }
        double lo = std::min(f0, f1), hi = std::max(f0, f1);
        if (hi > 500 && lo > 0 && lo / (lo + hi) < 0.15)
            found_rare_arm = true;
    }
    EXPECT_TRUE(found_rare_arm);
}

TEST(Workloads, Parser1HasRareDeepPaths)
{
    Program p = buildWorkload(*findWorkload("parser_1"));
    ProfileData profile = prepareProgram(p);
    (void)profile;
    // Division (a long-latency op) must appear only on cold blocks.
    bool division_is_cold = true;
    bool division_exists = false;
    for (BlockId id : p.fn.blockIds()) {
        const BasicBlock *bb = p.fn.block(id);
        bool has_div = false;
        for (const auto &inst : bb->insts) {
            if (inst.op == Opcode::Div || inst.op == Opcode::Mod)
                has_div = true;
        }
        if (!has_div)
            continue;
        division_exists = true;
        if (bb->frequency() > 500)
            division_is_cold = false;
    }
    EXPECT_TRUE(division_exists);
    EXPECT_TRUE(division_is_cold);
}

} // namespace
} // namespace chf
