#include "ir/basic_block.h"

#include <algorithm>

namespace chf {

std::vector<BlockId>
BasicBlock::successors() const
{
    std::vector<BlockId> out;
    for (const auto &inst : insts) {
        if (inst.op == Opcode::Br) {
            if (std::find(out.begin(), out.end(), inst.target) == out.end())
                out.push_back(inst.target);
        }
    }
    return out;
}

std::vector<size_t>
BasicBlock::branchIndices() const
{
    std::vector<size_t> out;
    for (size_t i = 0; i < insts.size(); ++i) {
        if (insts[i].isBranch())
            out.push_back(i);
    }
    return out;
}

bool
BasicBlock::hasReturn() const
{
    for (const auto &inst : insts) {
        if (inst.op == Opcode::Ret)
            return true;
    }
    return false;
}

double
BasicBlock::frequency() const
{
    double total = 0.0;
    for (const auto &inst : insts) {
        if (inst.isBranch())
            total += inst.freq;
    }
    return total;
}

size_t
BasicBlock::memoryOpCount() const
{
    size_t n = 0;
    for (const auto &inst : insts) {
        if (opcodeIsMemory(inst.op))
            ++n;
    }
    return n;
}

bool
BasicBlock::isPredicated() const
{
    for (const auto &inst : insts) {
        if (inst.pred.valid())
            return true;
    }
    return false;
}

} // namespace chf
