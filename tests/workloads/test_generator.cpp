/**
 * @file
 * Generator determinism and golden-stability gates
 * (src/workloads/generator.h).
 *
 * The differential fuzz harness's whole reproducibility story rests on
 * `generateTinyC(seed, shape)` being a pure function: the same spec
 * string must regenerate the same bytes on any machine, any run, any
 * thread. The golden test pins three (seed, shape) pairs to their
 * source hashes — if a generator change trips it, that change breaks
 * every historical repro line, so bump the hashes only deliberately
 * (and say so in the commit message).
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "ir/printer.h"
#include "support/hash.h"
#include "workloads/generator.h"

namespace chf {
namespace {

uint64_t
goldenDigest(const GeneratedProgram &g)
{
    Hash64 h;
    h.str(g.source);
    for (int64_t a : g.args)
        h.u64(static_cast<uint64_t>(a));
    return h.digest();
}

struct GoldenPin
{
    uint64_t seed;
    const char *shape;
    uint64_t digest;
};

/** Regenerating these must produce exactly these bytes, forever. */
constexpr GoldenPin kGoldenPins[] = {
    {1ull, "default", 0x7235c9cba0863284ull},
    {7ull, "irreducible", 0x62109a61e29a7193ull},
    {42ull, "switchy", 0x339c9ca3133e7251ull},
};

TEST(GeneratorGolden, PinnedSeedsAreByteStable)
{
    for (const GoldenPin &pin : kGoldenPins) {
        GeneratorShape shape;
        ASSERT_TRUE(namedShape(pin.shape, &shape));
        GeneratedProgram g = generateTinyC(pin.seed, shape);
        EXPECT_EQ(goldenDigest(g), pin.digest)
            << "seed " << pin.seed << " shape " << pin.shape
            << ": generator output changed — historical --gen= repro "
               "lines no longer reproduce";
        // And run-to-run within the process: byte-equal, not just
        // hash-equal.
        GeneratedProgram again = generateTinyC(pin.seed, shape);
        EXPECT_EQ(g.source, again.source);
        EXPECT_EQ(g.args, again.args);
    }
}

TEST(GeneratorGolden, ConcurrentGenerationIsByteIdentical)
{
    // The generator owns its Rng by value and touches no globals, so
    // four threads racing on the same specs must produce the same
    // bytes as the sequential run.
    std::vector<GeneratedProgram> sequential;
    for (const GoldenPin &pin : kGoldenPins) {
        GeneratorShape shape;
        ASSERT_TRUE(namedShape(pin.shape, &shape));
        sequential.push_back(generateTinyC(pin.seed, shape));
    }

    constexpr int kThreads = 4;
    std::vector<std::vector<GeneratedProgram>> perThread(kThreads);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([t, &perThread] {
            for (const GoldenPin &pin : kGoldenPins) {
                GeneratorShape shape;
                namedShape(pin.shape, &shape);
                perThread[static_cast<size_t>(t)].push_back(
                    generateTinyC(pin.seed, shape));
            }
        });
    }
    for (std::thread &w : workers)
        w.join();

    for (int t = 0; t < kThreads; ++t) {
        for (size_t i = 0; i < sequential.size(); ++i) {
            EXPECT_EQ(perThread[static_cast<size_t>(t)][i].source,
                      sequential[i].source)
                << "thread " << t << " pin " << i;
            EXPECT_EQ(perThread[static_cast<size_t>(t)][i].args,
                      sequential[i].args);
        }
    }
}

TEST(GeneratorSpec, SpecStringRoundTrips)
{
    for (const std::string &name : shapeNames()) {
        GeneratorShape shape;
        ASSERT_TRUE(namedShape(name, &shape));
        std::string spec = genSpecString(991, shape);

        uint64_t seed = 0;
        GeneratorShape parsed;
        std::string err;
        ASSERT_TRUE(parseGenSpec(spec, &seed, &parsed, &err))
            << spec << ": " << err;
        EXPECT_EQ(seed, 991u);
        EXPECT_TRUE(parsed == shape) << spec;
    }
}

TEST(GeneratorSpec, RejectsMalformedSpecs)
{
    uint64_t seed = 0;
    GeneratorShape shape;
    std::string err;
    for (const char *bad :
         {"seed", "seed:x", "shape:nosuch", "bogus:3", "seed:1,trip:"}) {
        EXPECT_FALSE(parseGenSpec(bad, &seed, &shape, &err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(GeneratorSpec, RejectsOutOfRangeNumbers)
{
    // Regression: strtoll saturates with ERANGE (silently renaming the
    // seed's program) and shape values wider than int wrapped in the
    // cast. Both must be spec errors, not silent misbehavior.
    uint64_t seed = 0;
    GeneratorShape shape;
    std::string err;
    for (const char *bad : {"seed:99999999999999999999",
                            "seed:1,regions:4294967296",
                            "seed:1,trip:-99999999999999999999"}) {
        err.clear();
        EXPECT_FALSE(parseGenSpec(bad, &seed, &shape, &err)) << bad;
        EXPECT_NE(err.find("out of range"), std::string::npos) << bad;
    }
}

TEST(GeneratorLowering, EveryPresetLowersAndTerminates)
{
    // Each preset's seed-1 program must survive the front end and the
    // simulator within a modest block budget — the generator's
    // termination-by-construction invariant.
    for (const std::string &name : shapeNames()) {
        GeneratorShape shape;
        ASSERT_TRUE(namedShape(name, &shape));
        GeneratedProgram g = generateTinyC(1, shape);
        Program program;
        ASSERT_NO_THROW(program = buildGenerated(g)) << name;
        EXPECT_GE(program.fn.numBlocks(), 1u) << name;
        EXPECT_EQ(program.defaultArgs, g.args) << name;
    }
}

TEST(GeneratorIrreducible, InjectionIsDeterministic)
{
    GeneratorShape shape;
    ASSERT_TRUE(namedShape("irreducible", &shape));
    ASSERT_GT(shape.irreducibleEdges, 0);
    GeneratedProgram g = generateTinyC(7, shape);

    Program a = buildGenerated(g);
    Program b = buildGenerated(g);
    EXPECT_EQ(a.fn.numBlocks(), b.fn.numBlocks());
    EXPECT_EQ(toString(a.fn), toString(b.fn));
}

} // namespace
} // namespace chf
