/**
 * @file
 * Plain-text table formatter used by the benchmark harnesses to print
 * paper-style result tables (Table 1, Table 2, Table 3).
 */

#ifndef CHF_SUPPORT_TABLE_H
#define CHF_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace chf {

/** Column-aligned text table with a header row and separator. */
class TextTable
{
  public:
    /** Set the header cells; defines the column count. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the table with aligned columns. */
    std::string render() const;

    /** Format a double with @p decimals fraction digits. */
    static std::string fmt(double value, int decimals = 1);

    /** Format a percentage improvement, signed, one decimal. */
    static std::string pct(double value);

  private:
    std::vector<std::string> header;
    // Empty row vector encodes a separator.
    std::vector<std::vector<std::string>> rows;
};

} // namespace chf

#endif // CHF_SUPPORT_TABLE_H
