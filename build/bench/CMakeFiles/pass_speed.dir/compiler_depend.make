# Empty compiler generated dependencies file for pass_speed.
# This may be replaced when dependencies are built.
