/**
 * @file
 * Incremental if-conversion: the Combine step of the paper's
 * MergeBlocks (Fig. 5).
 *
 * combineBlocks() appends the instructions of a successor block S to a
 * hyperblock HB, predicating them on the condition under which HB
 * branched to S, and removes the consumed branches. Control dependence
 * becomes data dependence [Allen et al.]: S's instructions (including
 * its branches) execute only when the entry condition holds, expressed
 * with predicates and, where S was itself predicated, with materialized
 * AND chains of 0/1 predicate values.
 *
 * The same primitive implements tail duplication, loop peeling, and
 * loop unrolling (head duplication): the caller chooses which block
 * object to append (the live S, or a pristine saved loop body) and what
 * happens to the original S afterwards.
 */

#ifndef CHF_TRANSFORM_IF_CONVERT_H
#define CHF_TRANSFORM_IF_CONVERT_H

#include "ir/function.h"

namespace chf {

/** True if any instruction in @p bb writes @p reg. */
bool writesReg(const BasicBlock &bb, Vreg reg);

/**
 * Reusable working storage for combineBlocks. The merge engine runs
 * one combine per speculative trial; passing the same scratch across
 * trials reuses the vector capacity instead of reallocating the
 * rebuilt body (often hundreds of instructions) every time.
 */
struct CombineScratch
{
    /** One cached predicate fold: entry && (reg == polarity). */
    struct FoldEntry
    {
        Vreg reg;
        bool onTrue;
        Vreg folded;
    };

    std::vector<size_t> consumed;
    std::vector<Vreg> snapshots;
    std::vector<Instruction> body;
    std::vector<FoldEntry> foldCache;

    /**
     * Set by combineBlocksAt: the merge seam. Body positions
     * [0, firstDirty) are verbatim, position-aligned copies of the
     * pre-combine hyperblock (everything below the first consumed
     * branch survives unmodified and nothing above it is inserted);
     * every instruction the combine introduced or rewrote -- removed
     * or materialized branches, the OR chain, predicated copies of S
     * -- lands at or after it. This is the seam the incremental
     * optimizer (optimizeBlockFrom) starts from.
     */
    size_t firstDirty = 0;
};

/**
 * A detached virtual-register allocator: hands out `next, next+1, ...`
 * exactly as Function::newVreg would from the same starting point.
 * Speculative trial merges run combineBlocks against a cursor seeded at
 * their *predicted* base (start-of-epoch counter plus the
 * combineVregCost of every earlier candidate) instead of touching the
 * function's shared counter, which is what makes a trial side-effect-
 * free enough to run on a worker thread (DESIGN.md §11).
 */
struct VregCursor
{
    uint32_t next = 0;

    Vreg take() { return next++; }
};

/**
 * Append @p s to @p hb under the entry condition of HB -> S branches,
 * allocating any materialized predicate registers from @p vregs.
 *
 * @param vregs       Detached register allocator; advanced by exactly
 *                    combineVregCost(hb, s).
 * @param hb          The growing hyperblock; modified in place.
 * @param s           The block to merge (not modified; may be a saved
 *                    pristine copy whose id equals hb's for unrolling).
 * @param freq_share  Factor applied to the appended branch frequencies:
 *                    the share of S's profiled executions that flow
 *                    through HB.
 * @param scratch     Optional reusable working storage; when null a
 *                    fresh local scratch is used (identical behavior).
 * @return false if HB has no branch to S (nothing changed).
 */
bool combineBlocksAt(VregCursor &vregs, BasicBlock &hb,
                     const BasicBlock &s, double freq_share,
                     CombineScratch *scratch = nullptr);

/**
 * Append @p s to @p hb under the entry condition of HB -> S branches.
 * Equivalent to combineBlocksAt with a cursor seeded at fn.numVregs(),
 * advancing fn's counter by the registers consumed.
 *
 * @param fn          Function providing fresh vregs (hb need not be a
 *                    live block of fn; scratch blocks are fine).
 * @param hb          The growing hyperblock; modified in place.
 * @param s           The block to merge (not modified; may be a saved
 *                    pristine copy whose id equals hb's for unrolling).
 * @param freq_share  Factor applied to the appended branch frequencies:
 *                    the share of S's profiled executions that flow
 *                    through HB.
 * @param scratch     Optional reusable working storage; when null a
 *                    fresh local scratch is used (identical behavior).
 * @return false if HB has no branch to S (nothing changed).
 */
bool combineBlocks(Function &fn, BasicBlock &hb, const BasicBlock &s,
                   double freq_share, CombineScratch *scratch = nullptr);

/**
 * Exact number of virtual registers combineBlocks(fn, hb, s, ...)
 * would allocate, computed without mutating anything. The trial-merge
 * fast path burns this many registers when it skips a trial so that
 * every later allocation lands on the same number as on the slow path
 * (vreg numbering is part of bit-identical output). Determined purely
 * by the *contents* of @p hb and @p s — never by fn's counter — so a
 * memoized value stays exact as long as the block contents hash equal.
 */
uint32_t combineVregCost(const BasicBlock &hb, const BasicBlock &s);

} // namespace chf

#endif // CHF_TRANSFORM_IF_CONVERT_H
