/**
 * @file
 * Core value types of the CHF intermediate representation: virtual
 * registers, instruction operands, and predicates.
 *
 * The IR is a RISC-like, predicated, register-transfer representation in
 * the spirit of the form Scale lowers to before TRIPS hyperblock
 * formation. Values are 64-bit integers in virtual registers; memory is a
 * flat word-addressed array.
 */

#ifndef CHF_IR_VALUE_H
#define CHF_IR_VALUE_H

#include <cstdint>
#include <limits>

namespace chf {

/** Virtual register id. */
using Vreg = uint32_t;

/** Sentinel meaning "no register". */
constexpr Vreg kNoVreg = std::numeric_limits<Vreg>::max();

/** Basic block id (index into Function's block table). */
using BlockId = uint32_t;

/** Sentinel meaning "no block". */
constexpr BlockId kNoBlock = std::numeric_limits<BlockId>::max();

/** An instruction source operand: a register, an immediate, or unused. */
struct Operand
{
    enum class Kind : uint8_t { None, Reg, Imm };

    Kind kind = Kind::None;
    Vreg reg = kNoVreg;
    int64_t imm = 0;

    static Operand
    makeReg(Vreg r)
    {
        Operand op;
        op.kind = Kind::Reg;
        op.reg = r;
        return op;
    }

    static Operand
    makeImm(int64_t v)
    {
        Operand op;
        op.kind = Kind::Imm;
        op.imm = v;
        return op;
    }

    static Operand makeNone() { return Operand{}; }

    bool isReg() const { return kind == Kind::Reg; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isNone() const { return kind == Kind::None; }

    bool
    operator==(const Operand &other) const
    {
        if (kind != other.kind)
            return false;
        switch (kind) {
          case Kind::None:
            return true;
          case Kind::Reg:
            return reg == other.reg;
          case Kind::Imm:
            return imm == other.imm;
        }
        return false;
    }
};

/**
 * An execution guard: the instruction executes iff the predicate register
 * is nonzero (onTrue) or zero (!onTrue). An invalid predicate means the
 * instruction always executes.
 */
struct Predicate
{
    Vreg reg = kNoVreg;
    bool onTrue = true;

    bool valid() const { return reg != kNoVreg; }

    static Predicate
    onReg(Vreg r, bool on_true = true)
    {
        Predicate p;
        p.reg = r;
        p.onTrue = on_true;
        return p;
    }

    static Predicate always() { return Predicate{}; }

    bool
    operator==(const Predicate &other) const
    {
        if (!valid() && !other.valid())
            return true;
        return reg == other.reg && onTrue == other.onTrue;
    }
};

} // namespace chf

#endif // CHF_IR_VALUE_H
