#include "transform/for_loop_unroll.h"

#include <optional>

#include "analysis/loops.h"
#include "transform/cfg_utils.h"
#include "transform/if_convert.h"

namespace chf {

namespace {

/** Everything recognized about a counted loop. */
struct CountedLoop
{
    BlockId head = kNoBlock;
    BlockId body = kNoBlock;
    BlockId exit = kNoBlock;
    size_t testIndex = 0;     ///< index of the test in the head
    Opcode testOp = Opcode::Tlt;
    Vreg induction = kNoVreg;
    Operand bound;
    int64_t step = 0;         ///< positive increment
    double backFreq = 0.0;
};

/** Match the two-block counted-loop shape; nullopt if it diverges. */
std::optional<CountedLoop>
matchCountedLoop(const Function &fn, const Loop &loop)
{
    if (loop.blocks.size() != 2 || loop.latches.size() != 1)
        return std::nullopt;

    CountedLoop out;
    out.head = loop.header;
    out.body = loop.latches[0];
    if (out.body == out.head)
        return std::nullopt;

    const BasicBlock *head = fn.block(out.head);
    const BasicBlock *body = fn.block(out.body);

    // Head: two predicated branches on one test register t with
    // opposite polarity: (t,true) -> body, (t,false) -> exit.
    Vreg test_reg = kNoVreg;
    int branches = 0;
    for (const auto &inst : head->insts) {
        if (!inst.isBranch())
            continue;
        ++branches;
        if (inst.op != Opcode::Br || !inst.pred.valid())
            return std::nullopt;
        if (inst.pred.onTrue) {
            if (inst.target != out.body)
                return std::nullopt;
            test_reg = inst.pred.reg;
            out.backFreq = inst.freq;
        } else {
            out.exit = inst.target;
        }
    }
    if (branches != 2 || test_reg == kNoVreg || out.exit == kNoBlock)
        return std::nullopt;
    if (out.exit == out.head || out.exit == out.body)
        return std::nullopt;

    // Locate the test: t = Tlt/Tle(i, bound), the only writer of t,
    // with t consumed only by the two branches. No stores in the head
    // (its prefix is re-executed by the epilogue head).
    bool found_test = false;
    for (size_t i = 0; i < head->insts.size(); ++i) {
        const Instruction &inst = head->insts[i];
        if (inst.op == Opcode::Store)
            return std::nullopt;
        if (inst.hasDest() && inst.dest == test_reg) {
            if (found_test)
                return std::nullopt; // multiple writers
            if ((inst.op != Opcode::Tlt && inst.op != Opcode::Tle) ||
                inst.pred.valid() || !inst.srcs[0].isReg()) {
                return std::nullopt;
            }
            found_test = true;
            out.testIndex = i;
            out.testOp = inst.op;
            out.induction = inst.srcs[0].reg;
            out.bound = inst.srcs[1];
        }
        // t must feed only the branches.
        if (!inst.isBranch()) {
            bool reads_test = false;
            inst.forEachUse([&](Vreg v) {
                if (v == test_reg)
                    reads_test = true;
            });
            if (reads_test)
                return std::nullopt;
        }
    }
    if (!found_test)
        return std::nullopt;

    // Body: straight-line (single unpredicated back branch), exactly
    // one induction update i = i + c with c > 0, placed anywhere.
    int body_branches = 0;
    int updates = 0;
    for (const auto &inst : body->insts) {
        if (inst.isBranch()) {
            ++body_branches;
            if (inst.op != Opcode::Br || inst.pred.valid() ||
                inst.target != out.head) {
                return std::nullopt;
            }
            continue;
        }
        if (inst.pred.valid())
            return std::nullopt;
        if (inst.hasDest() && inst.dest == out.induction) {
            ++updates;
            if (inst.op != Opcode::Add || !inst.srcs[0].isReg() ||
                inst.srcs[0].reg != out.induction ||
                !inst.srcs[1].isImm() || inst.srcs[1].imm <= 0) {
                return std::nullopt;
            }
            out.step = inst.srcs[1].imm;
        }
    }
    if (body_branches != 1 || updates != 1)
        return std::nullopt;

    // The induction register must not be written in the head; the bound
    // must be invariant (immediate, or a register written in neither
    // block).
    for (const auto &inst : head->insts) {
        if (inst.hasDest() && inst.dest == out.induction)
            return std::nullopt;
    }
    if (out.bound.isReg()) {
        if (writesReg(*head, out.bound.reg) ||
            writesReg(*body, out.bound.reg)) {
            return std::nullopt;
        }
    }
    return out;
}

} // namespace

size_t
unrollForLoops(Function &fn, const ProfileData &profile,
               const ForLoopUnrollOptions &options)
{
    LoopInfo loops(fn);
    size_t unrolled = 0;

    for (const Loop &loop : loops.loops()) {
        auto matched = matchCountedLoop(fn, loop);
        if (!matched)
            continue;
        const CountedLoop &cl = *matched;

        const BasicBlock *head = fn.block(cl.head);
        const BasicBlock *body = fn.block(cl.body);

        int factor = options.factor;
        if (factor < 2)
            continue;
        if (static_cast<size_t>(factor) *
                (head->size() + body->size()) >
            options.sizeBudget) {
            continue;
        }
        if (profile.trips.has(cl.head) &&
            profile.trips.meanTrips(cl.head) < options.minMeanTrips) {
            continue;
        }

        // --- Build the unrolled structure ---
        // Head (in place): replace the test with a lookahead guard
        //   g = testOp(i + (factor-1)*step, bound)
        // branching to the new main body or the epilogue head.
        // Main body: body + (factor-1) x (head prefix + body), ending
        // with a branch back to the head.
        // Epilogue: a pristine copy of the original head + body pair.

        // Pristine copies first.
        std::vector<Instruction> head_insts = head->insts;
        std::vector<Instruction> body_insts = body->insts;

        BasicBlock *main_body = fn.newBlock(head->name() + "_unrolled");
        BasicBlock *epi_head = fn.newBlock(head->name() + "_epi");
        BasicBlock *epi_body = fn.newBlock(body->name() + "_epi");

        // Epilogue head: full original head, body branch retargeted.
        epi_head->insts = head_insts;
        redirectBranches(*epi_head, cl.body, epi_body->id());
        scaleBranchFreqs(*epi_head, 0.2);

        // Epilogue body: original body, back edge to the epilogue head.
        epi_body->insts = body_insts;
        redirectBranches(*epi_body, cl.head, epi_head->id());
        scaleBranchFreqs(*epi_body, 0.2);

        // Main body: factor iterations per pass.
        for (int iter = 0; iter < factor; ++iter) {
            if (iter > 0) {
                // Head prefix: everything except test and branches
                // (side-effect-free by the match conditions).
                for (size_t i = 0; i < head_insts.size(); ++i) {
                    const Instruction &inst = head_insts[i];
                    if (i == cl.testIndex || inst.isBranch())
                        continue;
                    main_body->append(inst);
                }
            }
            for (const auto &inst : body_insts) {
                if (inst.isBranch())
                    continue;
                main_body->append(inst);
            }
        }
        main_body->append(Instruction::br(cl.head, Predicate::always(),
                                          cl.backFreq *
                                              (1.0 / factor) * 0.8));

        // Rewrite the head in place: lookahead guard + retargeted
        // branches.
        BasicBlock *mutable_head = fn.block(cl.head);
        std::vector<Instruction> new_head;
        for (size_t i = 0; i < mutable_head->insts.size(); ++i) {
            Instruction inst = mutable_head->insts[i];
            if (i == cl.testIndex) {
                Vreg lookahead = fn.newVreg();
                new_head.push_back(Instruction::binary(
                    Opcode::Add, lookahead,
                    Operand::makeReg(cl.induction),
                    Operand::makeImm((factor - 1) * cl.step)));
                inst.srcs[0] = Operand::makeReg(lookahead);
                new_head.push_back(inst);
                continue;
            }
            if (inst.op == Opcode::Br) {
                if (inst.target == cl.body) {
                    inst.target = main_body->id();
                    inst.freq *= 0.8;
                } else {
                    inst.target = epi_head->id();
                }
            }
            new_head.push_back(inst);
        }
        mutable_head->insts = std::move(new_head);

        // The old body is now unreachable (nothing branches to it).
        fn.removeBlock(cl.body);
        ++unrolled;
    }

    if (unrolled > 0)
        fn.removeUnreachable();
    return unrolled;
}

} // namespace chf
