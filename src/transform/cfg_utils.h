/**
 * @file
 * CFG editing utilities shared by the transforms: block cloning with
 * edge remapping, branch redirection, and frequency bookkeeping.
 *
 * Invalidation contract: none of these helpers notify the analysis
 * cache. A caller holding a chf::AnalysisManager must report each
 * mutation through the matching event -- branchesRewritten() after
 * redirectBranches(), invalidateAll() after cloneRegion() or
 * splitBlockAt() (the block table grew), blockAbsorbed()/blockRemoved()
 * when a block goes away. See DESIGN.md, "Analysis caching &
 * invalidation". Frequency-only edits (scaleBranchFreqs) need no event:
 * no cached analysis reads frequencies.
 */

#ifndef CHF_TRANSFORM_CFG_UTILS_H
#define CHF_TRANSFORM_CFG_UTILS_H

#include <map>
#include <vector>

#include "ir/function.h"

namespace chf {

/** Indices of branch instructions in @p bb that target @p target. */
std::vector<size_t> branchesTo(const BasicBlock &bb, BlockId target);

/** Sum of frequencies of branches in @p bb targeting @p target. */
double branchFreqTo(const BasicBlock &bb, BlockId target);

/** Retarget every branch in @p bb aimed at @p from to @p to. */
void redirectBranches(BasicBlock &bb, BlockId from, BlockId to);

/** Multiply every branch frequency in @p bb by @p factor. */
void scaleBranchFreqs(BasicBlock &bb, double factor);

/**
 * Clone a set of blocks. Branches among cloned blocks are remapped to
 * the clones; branches leaving the set keep their original targets.
 * Returns the old-id -> new-id map. Clone branch frequencies are scaled
 * by @p freq_scale and the originals by (1 - freq_scale).
 */
std::map<BlockId, BlockId> cloneRegion(Function &fn,
                                       const std::vector<BlockId> &blocks,
                                       double freq_scale);

/**
 * The probability-weighted share of @p s's executions that arrive via
 * branches from @p hb (0 when @p s never executes).
 */
double entryShare(const BasicBlock &hb, const BasicBlock &s);

} // namespace chf

#endif // CHF_TRANSFORM_CFG_UTILS_H
