/**
 * @file
 * A command-line TinyC compiler driver: compiles a source file through
 * the full pipeline (front end, profiling, convergent hyperblock
 * formation, backend) via chf::Session and executes it on both
 * simulators. Useful for experimenting with the compiler on your own
 * kernels.
 *
 * Run: ./tinyc_compiler path/to/program.tc [args...]
 *      ./tinyc_compiler --dump path/to/program.tc    (print final IR)
 *      ./tinyc_compiler --gen=seed:7,shape:switchy   (generated input)
 *
 * Robustness flags:
 *   --keep-going   transactional pipeline: a phase that fails
 *                  verification is rolled back and skipped instead of
 *                  aborting; diagnostics are printed at the end
 *   --fault=SPEC   arm the deterministic fault injector, e.g.
 *                  --fault=phase:formation,fn:0,kind:corrupt-ir
 *   --threads=N    worker threads for the compile session (the output
 *                  is identical at any N; this driver has one unit, so
 *                  N mostly matters for batch drivers built on the
 *                  same Session API)
 *   --target=NAME  compile for a registry target model ("trips",
 *                  "trips-wide", "small-block", "deep-lsq"; default
 *                  "trips"). Forwarded in the request in --server
 *                  mode, where it participates in the server's
 *                  compile-cache key.
 *   --gen=SPEC     compile a generated program instead of a file:
 *                  SPEC is the generator spec a fuzz failure prints
 *                  (seed:S,funcs:N,shape:X,...; see docs/testing.md)
 *   --source       with --gen, print the generated TinyC source
 *   --server=SOCK  client mode: ship the compile to a running
 *                  chf_serve daemon on unix socket SOCK instead of
 *                  compiling in-process, and print the JSON response
 *                  (--keep-going, --fault, --asm and program args are
 *                  forwarded in the request; see docs/operations.md)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "backend/asm_writer.h"
#include "ir/printer.h"
#include "pipeline/server.h"
#include "pipeline/session.h"
#include "sim/functional_sim.h"
#include "sim/timing_sim.h"
#include "support/fault_inject.h"
#include "workloads/generator.h"

using namespace chf;

namespace {

/**
 * Client mode: one request line to a chf_serve daemon, one response
 * line to stdout. Exit status reflects transport health, not compile
 * outcome — a "timeout" or "error" response is a successful round
 * trip the caller can inspect.
 */
int
runServerClient(const std::string &socket_path,
                const std::string &request)
{
    int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (fd < 0 || socket_path.size() >= sizeof addr.sun_path) {
        std::fprintf(stderr, "cannot reach %s\n", socket_path.c_str());
        return 1;
    }
    std::strcpy(addr.sun_path, socket_path.c_str());
    if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                sizeof addr) != 0) {
        std::perror("connect");
        close(fd);
        return 1;
    }
    std::string line = request + "\n";
    size_t off = 0;
    while (off < line.size()) {
        ssize_t n = write(fd, line.data() + off, line.size() - off);
        if (n <= 0) {
            std::perror("write");
            close(fd);
            return 1;
        }
        off += static_cast<size_t>(n);
    }
    std::string response;
    char chunk[4096];
    for (;;) {
        ssize_t n = read(fd, chunk, sizeof chunk);
        if (n <= 0)
            break;
        response.append(chunk, static_cast<size_t>(n));
        if (response.find('\n') != std::string::npos)
            break;
    }
    close(fd);
    size_t nl = response.find('\n');
    if (nl == std::string::npos) {
        std::fprintf(stderr, "no response from %s\n",
                     socket_path.c_str());
        return 1;
    }
    std::printf("%s\n", response.substr(0, nl).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool dump = false;
    bool emit_asm = false;
    bool keep_going = false;
    bool print_source = false;
    std::string gen_spec;
    std::string fault_spec;
    std::string server_path;
    std::string target_name = "trips";
    int threads = 1;
    int argi = 1;
    while (argi < argc && argv[argi][0] == '-') {
        if (std::strcmp(argv[argi], "--dump") == 0) {
            dump = true;
        } else if (std::strcmp(argv[argi], "--asm") == 0) {
            emit_asm = true;
        } else if (std::strcmp(argv[argi], "--keep-going") == 0) {
            keep_going = true;
        } else if (std::strcmp(argv[argi], "--source") == 0) {
            print_source = true;
        } else if (std::strncmp(argv[argi], "--gen=", 6) == 0) {
            gen_spec = argv[argi] + 6;
        } else if (std::strncmp(argv[argi], "--threads=", 10) == 0) {
            threads = std::atoi(argv[argi] + 10);
            if (threads < 1) {
                std::fprintf(stderr,
                             "--threads wants a positive integer\n");
                return 1;
            }
        } else if (std::strncmp(argv[argi], "--target=", 9) == 0) {
            target_name = argv[argi] + 9;
        } else if (std::strncmp(argv[argi], "--fault=", 8) == 0) {
            fault_spec = argv[argi] + 8;
        } else if (std::strncmp(argv[argi], "--server=", 9) == 0) {
            server_path = argv[argi] + 9;
        } else {
            break;
        }
        ++argi;
    }
    if (argi >= argc && gen_spec.empty()) {
        std::fprintf(stderr,
                     "usage: %s [--dump] [--asm] [--keep-going] "
                     "[--fault=SPEC] [--threads=N] [--target=NAME] "
                     "program.tc [int args...]\n"
                     "       %s [flags] --gen=seed:S,shape:X[,...] "
                     "[int args...]\n",
                     argv[0], argv[0]);
        return 1;
    }

    if (!server_path.empty()) {
        std::ostringstream request;
        request << "{\"op\":\"compile\",";
        if (!gen_spec.empty()) {
            request << "\"gen\":" << jsonQuote(gen_spec);
        } else {
            std::ifstream in(argv[argi]);
            if (!in) {
                std::fprintf(stderr, "cannot open %s\n", argv[argi]);
                return 1;
            }
            std::stringstream buffer;
            buffer << in.rdbuf();
            request << "\"source\":" << jsonQuote(buffer.str());
            ++argi;
        }
        if (argi < argc) {
            request << ",\"args\":[";
            for (int i = argi; i < argc; ++i)
                request << (i > argi ? "," : "") << argv[i];
            request << "]";
        }
        request << ",\"keep_going\":"
                << (keep_going ? "true" : "false");
        if (target_name != "trips")
            request << ",\"target\":" << jsonQuote(target_name);
        if (emit_asm)
            request << ",\"emit_asm\":true";
        if (!fault_spec.empty())
            request << ",\"fault\":" << jsonQuote(fault_spec);
        request << "}";
        return runServerClient(server_path, request.str());
    }

    const TargetModel *target = findTarget(target_name);
    if (!target) {
        std::fprintf(stderr, "unknown target %s (known targets: %s)\n",
                     target_name.c_str(), targetNamesJoined().c_str());
        return 1;
    }

    if (!fault_spec.empty()) {
        FaultSpec spec;
        std::string err;
        if (!parseFaultSpec(fault_spec, &spec, &err)) {
            std::fprintf(stderr, "bad --fault spec: %s\n", err.c_str());
            return 1;
        }
        FaultInjector::instance().arm(spec);
    }

    DiagnosticEngine diags;
    Program program;
    std::vector<int64_t> args;
    if (!gen_spec.empty()) {
        uint64_t seed = 0;
        GeneratorShape shape;
        std::string err;
        if (!parseGenSpec(gen_spec, &seed, &shape, &err)) {
            std::fprintf(stderr, "bad --gen spec: %s\n", err.c_str());
            return 1;
        }
        GeneratedProgram generated = generateTinyC(seed, shape);
        if (print_source)
            std::fputs(generated.source.c_str(), stdout);
        // buildGenerated, not the source path: irreducible-edge
        // injection happens at the IR level after lowering.
        program = buildGenerated(generated);
        for (int i = argi; i < argc; ++i)
            args.push_back(std::atoll(argv[i]));
        if (!args.empty())
            program.defaultArgs = args; // override the reference vector
    } else {
        std::ifstream in(argv[argi]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[argi]);
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        for (int i = argi + 1; i < argc; ++i)
            args.push_back(std::atoll(argv[i]));

        if (keep_going) {
            std::optional<Program> compiled_fe =
                Session::frontend(buffer.str(), diags);
            if (!compiled_fe) {
                diags.print(stderr);
                return 1;
            }
            program = std::move(*compiled_fe);
        } else {
            program = Session::frontend(buffer.str());
        }
        if (!args.empty())
            program.defaultArgs = args;
    }

    ProfileData profile = prepareProgram(
        program, {}, true, keep_going ? &diags : nullptr, keep_going);
    FuncSimResult baseline = runFunctional(program);
    TimingResult bb_timing = runTiming(program);

    Session session(SessionOptions()
                        .withPipeline(Pipeline::IUPO_fused)
                        .withTarget(*target)
                        .withKeepGoing(keep_going)
                        .withThreads(threads));
    session.addProgramRef(program, profile);
    SessionResult result = session.compile();
    FunctionResult &compiled = result.functions[0];
    diags.append(result.diagnostics);

    if (dump)
        std::printf("%s\n", toString(program.fn).c_str());
    if (emit_asm)
        std::printf("%s\n", writeFunctionAsm(program.fn).c_str());

    FuncSimResult run = runFunctional(program);
    TimingResult timing = runTiming(program);

    std::printf("result               %lld\n",
                static_cast<long long>(run.returnValue));
    // userHash, not memoryHash: residual spill-slot values are a
    // backend artifact the unoptimized baseline never produces.
    std::printf("semantics preserved  %s\n",
                run.returnValue == baseline.returnValue &&
                        run.memory.userHash() ==
                            baseline.memory.userHash()
                    ? "yes"
                    : "NO -- COMPILER BUG");
    std::printf("hyperblocks          %zu (from %zu basic blocks)\n",
                program.fn.numBlocks(),
                static_cast<size_t>(
                    compiled.stats.get("finalBlocks") +
                    compiled.stats.get("blocksMerged")));
    std::printf("formation            %s\n",
                compiled.stats.toString().c_str());
    std::printf("blocks executed      %llu -> %llu\n",
                static_cast<unsigned long long>(
                    baseline.blocksExecuted),
                static_cast<unsigned long long>(run.blocksExecuted));
    std::printf("cycles               %llu -> %llu (%+.1f%%)\n",
                static_cast<unsigned long long>(bb_timing.cycles),
                static_cast<unsigned long long>(timing.cycles),
                100.0 *
                    (static_cast<double>(bb_timing.cycles) -
                     static_cast<double>(timing.cycles)) /
                    static_cast<double>(bb_timing.cycles));
    std::printf("misprediction rate   %.2f%% -> %.2f%%\n",
                bb_timing.mispredictRate() * 100,
                timing.mispredictRate() * 100);

    if (keep_going) {
        if (compiled.degraded()) {
            std::printf("degraded phases      ");
            for (size_t i = 0; i < compiled.failedPhases.size(); ++i) {
                std::printf("%s%s", i ? ", " : "",
                            compiled.failedPhases[i].c_str());
            }
            std::printf("\n");
        }
        if (!diags.empty())
            diags.print(stderr);
    }
    return 0;
}
