/**
 * @file
 * A command-line TinyC compiler driver: compiles a source file through
 * the full pipeline (front end, profiling, convergent hyperblock
 * formation, backend) via chf::Session and executes it on both
 * simulators. Useful for experimenting with the compiler on your own
 * kernels.
 *
 * Run: ./tinyc_compiler path/to/program.tc [args...]
 *      ./tinyc_compiler --dump path/to/program.tc    (print final IR)
 *      ./tinyc_compiler --gen=seed:7,shape:switchy   (generated input)
 *
 * Robustness flags:
 *   --keep-going   transactional pipeline: a phase that fails
 *                  verification is rolled back and skipped instead of
 *                  aborting; diagnostics are printed at the end
 *   --fault=SPEC   arm the deterministic fault injector, e.g.
 *                  --fault=phase:formation,fn:0,kind:corrupt-ir
 *   --threads=N    worker threads for the compile session (the output
 *                  is identical at any N; this driver has one unit, so
 *                  N mostly matters for batch drivers built on the
 *                  same Session API)
 *   --gen=SPEC     compile a generated program instead of a file:
 *                  SPEC is the generator spec a fuzz failure prints
 *                  (seed:S,funcs:N,shape:X,...; see docs/testing.md)
 *   --source       with --gen, print the generated TinyC source
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "backend/asm_writer.h"
#include "ir/printer.h"
#include "pipeline/session.h"
#include "sim/functional_sim.h"
#include "sim/timing_sim.h"
#include "support/fault_inject.h"
#include "workloads/generator.h"

using namespace chf;

int
main(int argc, char **argv)
{
    bool dump = false;
    bool emit_asm = false;
    bool keep_going = false;
    bool print_source = false;
    std::string gen_spec;
    int threads = 1;
    int argi = 1;
    while (argi < argc && argv[argi][0] == '-') {
        if (std::strcmp(argv[argi], "--dump") == 0) {
            dump = true;
        } else if (std::strcmp(argv[argi], "--asm") == 0) {
            emit_asm = true;
        } else if (std::strcmp(argv[argi], "--keep-going") == 0) {
            keep_going = true;
        } else if (std::strcmp(argv[argi], "--source") == 0) {
            print_source = true;
        } else if (std::strncmp(argv[argi], "--gen=", 6) == 0) {
            gen_spec = argv[argi] + 6;
        } else if (std::strncmp(argv[argi], "--threads=", 10) == 0) {
            threads = std::atoi(argv[argi] + 10);
            if (threads < 1) {
                std::fprintf(stderr,
                             "--threads wants a positive integer\n");
                return 1;
            }
        } else if (std::strncmp(argv[argi], "--fault=", 8) == 0) {
            FaultSpec spec;
            std::string err;
            if (!parseFaultSpec(argv[argi] + 8, &spec, &err)) {
                std::fprintf(stderr, "bad --fault spec: %s\n",
                             err.c_str());
                return 1;
            }
            FaultInjector::instance().arm(spec);
        } else {
            break;
        }
        ++argi;
    }
    if (argi >= argc && gen_spec.empty()) {
        std::fprintf(stderr,
                     "usage: %s [--dump] [--asm] [--keep-going] "
                     "[--fault=SPEC] [--threads=N] program.tc "
                     "[int args...]\n"
                     "       %s [flags] --gen=seed:S,shape:X[,...] "
                     "[int args...]\n",
                     argv[0], argv[0]);
        return 1;
    }

    DiagnosticEngine diags;
    Program program;
    std::vector<int64_t> args;
    if (!gen_spec.empty()) {
        uint64_t seed = 0;
        GeneratorShape shape;
        std::string err;
        if (!parseGenSpec(gen_spec, &seed, &shape, &err)) {
            std::fprintf(stderr, "bad --gen spec: %s\n", err.c_str());
            return 1;
        }
        GeneratedProgram generated = generateTinyC(seed, shape);
        if (print_source)
            std::fputs(generated.source.c_str(), stdout);
        // buildGenerated, not the source path: irreducible-edge
        // injection happens at the IR level after lowering.
        program = buildGenerated(generated);
        for (int i = argi; i < argc; ++i)
            args.push_back(std::atoll(argv[i]));
        if (!args.empty())
            program.defaultArgs = args; // override the reference vector
    } else {
        std::ifstream in(argv[argi]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[argi]);
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        for (int i = argi + 1; i < argc; ++i)
            args.push_back(std::atoll(argv[i]));

        if (keep_going) {
            std::optional<Program> compiled_fe =
                Session::frontend(buffer.str(), diags);
            if (!compiled_fe) {
                diags.print(stderr);
                return 1;
            }
            program = std::move(*compiled_fe);
        } else {
            program = Session::frontend(buffer.str());
        }
        if (!args.empty())
            program.defaultArgs = args;
    }

    ProfileData profile = prepareProgram(
        program, {}, true, keep_going ? &diags : nullptr, keep_going);
    FuncSimResult baseline = runFunctional(program);
    TimingResult bb_timing = runTiming(program);

    Session session(SessionOptions()
                        .withPipeline(Pipeline::IUPO_fused)
                        .withKeepGoing(keep_going)
                        .withThreads(threads));
    session.addProgramRef(program, profile);
    SessionResult result = session.compile();
    FunctionResult &compiled = result.functions[0];
    diags.append(result.diagnostics);

    if (dump)
        std::printf("%s\n", toString(program.fn).c_str());
    if (emit_asm)
        std::printf("%s\n", writeFunctionAsm(program.fn).c_str());

    FuncSimResult run = runFunctional(program);
    TimingResult timing = runTiming(program);

    std::printf("result               %lld\n",
                static_cast<long long>(run.returnValue));
    // userHash, not memoryHash: residual spill-slot values are a
    // backend artifact the unoptimized baseline never produces.
    std::printf("semantics preserved  %s\n",
                run.returnValue == baseline.returnValue &&
                        run.memory.userHash() ==
                            baseline.memory.userHash()
                    ? "yes"
                    : "NO -- COMPILER BUG");
    std::printf("hyperblocks          %zu (from %zu basic blocks)\n",
                program.fn.numBlocks(),
                static_cast<size_t>(
                    compiled.stats.get("finalBlocks") +
                    compiled.stats.get("blocksMerged")));
    std::printf("formation            %s\n",
                compiled.stats.toString().c_str());
    std::printf("blocks executed      %llu -> %llu\n",
                static_cast<unsigned long long>(
                    baseline.blocksExecuted),
                static_cast<unsigned long long>(run.blocksExecuted));
    std::printf("cycles               %llu -> %llu (%+.1f%%)\n",
                static_cast<unsigned long long>(bb_timing.cycles),
                static_cast<unsigned long long>(timing.cycles),
                100.0 *
                    (static_cast<double>(bb_timing.cycles) -
                     static_cast<double>(timing.cycles)) /
                    static_cast<double>(bb_timing.cycles));
    std::printf("misprediction rate   %.2f%% -> %.2f%%\n",
                bb_timing.mispredictRate() * 100,
                timing.mispredictRate() * 100);

    if (keep_going) {
        if (compiled.degraded()) {
            std::printf("degraded phases      ");
            for (size_t i = 0; i < compiled.failedPhases.size(); ++i) {
                std::printf("%s%s", i ? ", " : "",
                            compiled.failedPhases[i].c_str());
            }
            std::printf("\n");
        }
        if (!diags.empty())
            diags.print(stderr);
    }
    return 0;
}
