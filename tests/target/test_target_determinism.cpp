/**
 * @file
 * Target-model determinism matrix: for every registry target, batch
 * compilation through chf::Session must produce byte-identical asm and
 * diagnostics whatever the thread count and whether the trial-merge
 * fast path is on — the same contract DESIGN.md §9/§10 pin for the
 * TRIPS model, extended over the target registry (§13). Run via the
 * `target_determinism` ctest (label "target"); scripts/check_targets.sh
 * runs the label under ASan.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "backend/asm_writer.h"
#include "pipeline/session.h"
#include "workloads/workloads.h"

namespace chf {
namespace {

/** Per-unit asm plus the merged diagnostic stream of one batch. */
struct BatchOutput
{
    std::vector<std::string> asmText;
    std::string diagText;
};

/** Compile a 3-workload batch for @p target. */
BatchOutput
compileBatch(const std::string &target, int threads, bool trial_cache)
{
    const char *const names[] = {"sieve", "bzip2_3", "parser_1"};

    Session session(SessionOptions()
                        .withTarget(target)
                        .withThreads(threads)
                        .withTrialCache(trial_cache)
                        .withKeepGoing(true));
    for (const char *name : names) {
        const Workload *workload = findWorkload(name);
        EXPECT_NE(workload, nullptr) << name;
        Program program = buildWorkload(*workload);
        ProfileData profile = prepareProgram(program);
        session.addProgram(std::move(program), std::move(profile),
                           name);
    }
    SessionResult result = session.compile();

    BatchOutput out;
    for (size_t unit = 0; unit < session.size(); ++unit)
        out.asmText.push_back(
            writeFunctionAsm(session.program(unit).fn));
    out.diagText = result.diagnostics.toString();
    return out;
}

class TargetDeterminism
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TargetDeterminism, ThreadsAndTrialCacheAreByteInvisible)
{
    const std::string target = GetParam();
    BatchOutput reference = compileBatch(target, 1, true);

    const std::pair<int, bool> configs[] = {
        {4, true}, {1, false}, {4, false}};
    for (const auto &[threads, cache] : configs) {
        BatchOutput probe = compileBatch(target, threads, cache);
        ASSERT_EQ(probe.asmText.size(), reference.asmText.size());
        for (size_t unit = 0; unit < reference.asmText.size(); ++unit) {
            EXPECT_EQ(probe.asmText[unit], reference.asmText[unit])
                << target << " unit " << unit << " threads=" << threads
                << " cache=" << cache;
        }
        EXPECT_EQ(probe.diagText, reference.diagText)
            << target << " threads=" << threads << " cache=" << cache;
    }
}

INSTANTIATE_TEST_SUITE_P(Registry, TargetDeterminism,
                         ::testing::Values("trips", "trips-wide",
                                           "small-block", "deep-lsq"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

TEST(TargetDeterminismCross, TargetsActuallyDiverge)
{
    // The matrix above would pass trivially if every target compiled
    // to the same bytes; pin that the registry geometries genuinely
    // change formation.
    BatchOutput trips = compileBatch("trips", 1, true);
    BatchOutput small = compileBatch("small-block", 1, true);
    bool any_differ = false;
    for (size_t unit = 0; unit < trips.asmText.size(); ++unit)
        any_differ |= trips.asmText[unit] != small.asmText[unit];
    EXPECT_TRUE(any_differ);
}

} // namespace
} // namespace chf
