/**
 * @file
 * Backend tests: register allocation (including forced spilling and
 * the reverse-if-conversion path), fanout insertion, and the spatial
 * scheduler.
 */

#include <gtest/gtest.h>

#include "backend/fanout.h"
#include "backend/regalloc.h"
#include "backend/scheduler.h"
#include "frontend/lowering.h"
#include "hyperblock/phase_ordering.h"
#include "ir/builder.h"
#include "ir/verifier.h"
#include "sim/functional_sim.h"

namespace chf {
namespace {

// ----- Register allocation -----

TEST(RegAlloc, NoSpillsWhenPressureLow)
{
    Program p = compileTinyC(
        "int main() { int a = 1; int b = 2; int c = a + b;\n"
        "  for (int i = 0; i < 10; i += 1) { c += i; }\n"
        "  return c; }");
    prepareProgram(p);
    auto before = runFunctional(p);

    RegAllocResult result = allocateRegisters(p);
    EXPECT_EQ(result.spilledValues, 0u);
    EXPECT_GT(result.crossBlockValues, 0u);
    EXPECT_EQ(runFunctional(p).returnValue, before.returnValue);
}

TEST(RegAlloc, SpillsUnderPressureAndPreservesSemantics)
{
    // 40 live accumulators across a loop, with only 16 registers.
    std::string src = "int main() {\n";
    for (int i = 0; i < 40; ++i) {
        src += "  int a" + std::to_string(i) + " = " +
               std::to_string(i) + ";\n";
    }
    src += "  for (int i = 0; i < 13; i += 1) {\n";
    for (int i = 0; i < 40; ++i) {
        src += "    a" + std::to_string(i) + " += " +
               std::to_string(i % 7) + ";\n";
    }
    src += "  }\n  int s = 0;\n";
    for (int i = 0; i < 40; ++i)
        src += "  s += a" + std::to_string(i) + ";\n";
    src += "  return s;\n}\n";

    Program p = compileTinyC(src);
    prepareProgram(p);
    auto before = runFunctional(p);

    RegAllocOptions options;
    options.numPhysRegs = 16;
    RegAllocResult result = allocateRegisters(p, options);
    EXPECT_GT(result.spilledValues, 0u);
    EXPECT_GT(result.spillInstsInserted, 0u);
    EXPECT_TRUE(p.memory.hasRegion("spill"));
    EXPECT_TRUE(verify(p.fn).empty());

    auto after = runFunctional(p);
    EXPECT_EQ(after.returnValue, before.returnValue);
}

TEST(RegAlloc, HotValuesGetRegistersFirst)
{
    Program p = compileTinyC(
        "int main() {\n"
        "  int hot = 0; int cold = 5;\n"
        "  for (int i = 0; i < 1000; i += 1) { hot += i; }\n"
        "  return hot + cold;\n"
        "}\n");
    ProfileData profile = prepareProgram(p);
    (void)profile;

    RegAllocOptions options;
    options.numPhysRegs = 2;
    RegAllocResult result = allocateRegisters(p, options);
    // Whatever spilled, the program still works.
    EXPECT_EQ(runFunctional(p).returnValue, 499500 + 5);
    (void)result;
}

// ----- Fanout insertion -----

TEST(Fanout, InsertsMovesForWideConsumers)
{
    Function fn;
    IRBuilder b(fn);
    BlockId id = b.makeBlock();
    fn.setEntry(id);
    b.setBlock(id);
    Vreg v = b.constant(9);
    Vreg s1 = b.add(IRBuilder::r(v), IRBuilder::r(v));
    Vreg s2 = b.add(IRBuilder::r(v), IRBuilder::r(s1));
    Vreg s3 = b.add(IRBuilder::r(v), IRBuilder::r(s2));
    Vreg s4 = b.add(IRBuilder::r(v), IRBuilder::r(s3));
    b.ret(IRBuilder::r(s4));

    Program p;
    p.fn = fn.clone();
    auto before = runFunctional(p).returnValue;

    size_t moves = insertFanout(fn, *fn.block(id));
    EXPECT_GT(moves, 0u);

    // No register now feeds more than two operand slots.
    std::map<Vreg, int> counts;
    for (const auto &inst : fn.block(id)->insts)
        inst.forEachUse([&](Vreg r) { counts[r]++; });
    for (const auto &[reg, count] : counts)
        EXPECT_LE(count, 2) << "v" << reg;

    Program q;
    q.fn = std::move(fn);
    EXPECT_EQ(runFunctional(q).returnValue, before);
}

TEST(Fanout, RewiresPredicateReads)
{
    Function fn;
    IRBuilder b(fn);
    BlockId id = b.makeBlock();
    fn.setEntry(id);
    b.setBlock(id);
    Vreg p = b.constant(1);
    // Five predicated consumers of p.
    for (int i = 0; i < 5; ++i) {
        Instruction inst = Instruction::unary(
            Opcode::Mov, fn.newVreg(), Operand::makeImm(i));
        inst.pred = Predicate::onReg(p, true);
        b.emit(inst);
    }
    b.ret(IRBuilder::imm(0));

    insertFanout(fn, *fn.block(id));
    std::map<Vreg, int> counts;
    for (const auto &inst : fn.block(id)->insts)
        inst.forEachUse([&](Vreg r) { counts[r]++; });
    for (const auto &[reg, count] : counts)
        EXPECT_LE(count, 2);
}

TEST(Fanout, LeavesNarrowBlocksAlone)
{
    Function fn;
    IRBuilder b(fn);
    BlockId id = b.makeBlock();
    fn.setEntry(id);
    b.setBlock(id);
    Vreg v = b.constant(1);
    Vreg w = b.add(IRBuilder::r(v), IRBuilder::imm(2));
    b.ret(IRBuilder::r(w));
    EXPECT_EQ(insertFanout(fn, *fn.block(id)), 0u);
}

// ----- Scheduler -----

TEST(Scheduler, TileDistanceIsManhattan)
{
    SchedulerOptions options; // 4x4
    EXPECT_EQ(tileDistance(0, 0, options), 0);
    EXPECT_EQ(tileDistance(0, 3, options), 3);  // same row
    EXPECT_EQ(tileDistance(0, 12, options), 3); // same column
    EXPECT_EQ(tileDistance(0, 15, options), 6); // opposite corner
    EXPECT_EQ(tileDistance(5, 6, options), 1);
}

TEST(Scheduler, RespectsTileCapacity)
{
    Function fn;
    IRBuilder b(fn);
    BlockId id = b.makeBlock();
    fn.setEntry(id);
    b.setBlock(id);
    // 127 independent constants + ret: must spread over tiles.
    for (int i = 0; i < 127; ++i)
        b.constant(i);
    b.ret(IRBuilder::imm(0));

    SchedulerOptions options;
    Placement placement = scheduleBlock(*fn.block(id), options);
    std::vector<int> used(options.numTiles(), 0);
    for (int tile : placement) {
        ASSERT_GE(tile, 0);
        ASSERT_LT(tile, options.numTiles());
        used[tile]++;
    }
    for (int count : used)
        EXPECT_LE(count, static_cast<int>(options.slotsPerTile));
}

TEST(Scheduler, KeepsDependenceChainsClose)
{
    Function fn;
    IRBuilder b(fn);
    BlockId id = b.makeBlock();
    fn.setEntry(id);
    b.setBlock(id);
    Vreg v = b.constant(1);
    for (int i = 0; i < 6; ++i)
        v = b.add(IRBuilder::r(v), IRBuilder::imm(1));
    b.ret(IRBuilder::r(v));

    SchedulerOptions options;
    Placement placement = scheduleBlock(*fn.block(id), options);
    // A pure dependence chain should stay on one tile (next-cycle
    // issue beats a network hop).
    for (size_t i = 2; i < placement.size() - 1; ++i)
        EXPECT_EQ(placement[i], placement[1]);
}

TEST(Scheduler, PlacementSizeMatchesBlock)
{
    Program p = compileTinyC("int main() { return 42; }");
    auto placements = scheduleFunction(p.fn);
    for (BlockId id : p.fn.blockIds())
        EXPECT_EQ(placements[id].size(), p.fn.block(id)->size());
}

} // namespace
} // namespace chf
