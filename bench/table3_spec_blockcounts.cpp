/**
 * @file
 * Reproduces Table 3: percent improvement in *blocks executed* over
 * basic blocks for the SPEC-like suite under the functional simulator
 * (the paper uses block counts because cycle-level simulation of full
 * SPEC is too slow; §7.3 establishes the correlation).
 */

#include <cstdio>
#include <vector>

#include "../bench/harness.h"
#include "support/table.h"

using namespace chf;
using namespace chf::bench;

int
main()
{
    const std::vector<std::pair<const char *, Pipeline>> configs = {
        {"UPIO", Pipeline::UPIO},
        {"IUPO", Pipeline::IUPO},
        {"(IUP)O", Pipeline::IUP_O},
        {"(IUPO)", Pipeline::IUPO_fused},
    };

    TextTable table;
    table.setHeader({"benchmark", "BB blocks", "UPIO %", "IUPO %",
                     "(IUP)O %", "(IUPO) %"});

    std::vector<double> sums(configs.size(), 0.0);
    size_t count = 0;

    std::printf("# table3: block-count improvement over BB on the "
                "SPEC-like suite (functional simulator)\n");

    for (const auto &workload : speclikeBenchmarks()) {
        Program base = buildWorkload(workload);
        ProfileData profile = prepareProgram(base);
        FuncSimResult oracle = runFunctional(base);

        Program bb_program = cloneProgram(base);
        CompileOptions bb_options;
        bb_options.pipeline = Pipeline::BB;
        compileProgram(bb_program, profile, bb_options);
        FuncSimResult bb = runFunctional(bb_program);

        std::vector<std::string> row;
        row.push_back(workload.name);
        row.push_back(std::to_string(bb.blocksExecuted));

        for (size_t c = 0; c < configs.size(); ++c) {
            Program program = cloneProgram(base);
            CompileOptions options;
            options.pipeline = configs[c].second;
            compileProgram(program, profile, options);
            FuncSimResult run = runFunctional(program);
            if (run.returnValue != oracle.returnValue ||
                run.memoryHash != oracle.memoryHash) {
                fatal(concat("semantics changed for ", workload.name,
                             " under ", configs[c].first));
            }
            double pct = improvementPct(bb.blocksExecuted,
                                        run.blocksExecuted);
            sums[c] += pct;
            row.push_back(TextTable::pct(pct));
        }
        table.addRow(row);
        ++count;
    }

    table.addSeparator();
    std::vector<std::string> avg = {"Average", ""};
    for (size_t c = 0; c < configs.size(); ++c)
        avg.push_back(TextTable::pct(sums[c] / count));
    table.addRow(avg);

    std::printf("%s", table.render().c_str());
    std::printf("\nheadline: block-count reduction averages UPIO "
                "%+.1f%%, IUPO %+.1f%%, (IUP)O %+.1f%%, (IUPO) %+.1f%% "
                "(paper: 48.1 / 49.9 / 50.7 / 51.8)\n",
                sums[0] / count, sums[1] / count, sums[2] / count,
                sums[3] / count);
    return 0;
}
