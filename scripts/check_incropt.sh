#!/bin/sh
# Memory-safety gate for seam-scoped incremental trial optimization:
# build with AddressSanitizer (CHF_SANITIZE=address instruments the
# whole library) and run every ctest labeled "incropt" — the
# incremental-opt differential matrix (CHF_INCR_OPT on vs off must be
# byte-identical across policies, thread counts, trial-cache and
# parallel-trial settings, and injected formation faults), the
# seam-seeded fixpoint-equality unit tests, and the kill-switch /
# option-plumbing checks (DESIGN.md §14). Test timeouts come from
# chf_test_budget(), which picks the sanitized ceiling under
# CHF_SANITIZE builds.
#
# Usage: scripts/check_incropt.sh [build-dir]   (default: build-asan)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCHF_SANITIZE=address
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 4)"

# halt_on_error: the first report fails the gate immediately instead of
# scrolling past in a long test log.
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$BUILD_DIR" -L incropt --output-on-failure
echo "check_incropt: ctest -L incropt clean under AddressSanitizer"
