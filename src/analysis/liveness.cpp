#include "analysis/liveness.h"

#include <algorithm>

namespace chf {

namespace {

/**
 * Bitvector universe padding. Formation allocates predicate registers
 * on nearly every merge; if the analysis tracked exactly
 * fn.numVregs() bits, every incremental update would resize every
 * bitvector of every block. Rounding the universe up by ~25% (and to a
 * whole word) makes growth resizes logarithmic in total register
 * growth. Padding bits are never set, so results are unaffected.
 */
uint32_t
paddedUniverse(uint32_t n)
{
    uint32_t pad = std::max<uint32_t>(64, n / 4);
    return (n + pad + 63) & ~uint32_t(63);
}

} // namespace

BitVector
blockUses(const BasicBlock &bb, uint32_t num_vregs)
{
    BitVector uses;
    BitVector killed;
    blockUsesInto(bb, num_vregs, uses, killed);
    return uses;
}

void
blockUsesInto(const BasicBlock &bb, uint32_t num_vregs, BitVector &uses,
              BitVector &killed_scratch)
{
    uses.resize(num_vregs);
    uses.reset();
    killed_scratch.resize(num_vregs);
    killed_scratch.reset();
    for (const auto &inst : bb.insts) {
        inst.forEachUse([&](Vreg v) {
            if (!killed_scratch.test(v))
                uses.set(v);
        });
        if (inst.hasDest() && !inst.pred.valid())
            killed_scratch.set(inst.dest);
    }
}

BitVector
blockKills(const BasicBlock &bb, uint32_t num_vregs)
{
    BitVector kills(num_vregs);
    for (const auto &inst : bb.insts) {
        if (inst.hasDest() && !inst.pred.valid())
            kills.set(inst.dest);
    }
    return kills;
}

BitVector
blockDefs(const BasicBlock &bb, uint32_t num_vregs)
{
    BitVector defs;
    blockDefsInto(bb, num_vregs, defs);
    return defs;
}

void
blockDefsInto(const BasicBlock &bb, uint32_t num_vregs, BitVector &defs)
{
    defs.resize(num_vregs);
    defs.reset();
    for (const auto &inst : bb.insts) {
        if (inst.hasDest())
            defs.set(inst.dest);
    }
}

Liveness::Liveness(const Function &fn)
{
    nv = paddedUniverse(fn.numVregs());
    size_t table = fn.blockTableSize();
    ins.assign(table, BitVector(nv));
    outs.assign(table, BitVector(nv));
    uses.assign(table, BitVector(nv));
    kills.assign(table, BitVector(nv));
    succs.assign(table, {});
    reachableBits.assign(table, 0);

    std::vector<BlockId> order = fn.reversePostOrder();
    for (BlockId id : order) {
        const BasicBlock *bb = fn.block(id);
        uses[id] = blockUses(*bb, nv);
        kills[id] = blockKills(*bb, nv);
        succs[id] = bb->successors();
        reachableBits[id] = 1;
    }

    // Backward fixed point: visit in post-order (reverse of RPO). The
    // scratch vectors are reused across visits to keep the solve
    // allocation-free.
    BitVector out(nv), in(nv);
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto it = order.rbegin(); it != order.rend(); ++it) {
            BlockId id = *it;
            out.reset();
            for (BlockId s : succs[id])
                out.unionWith(ins[s]);
            in = out;
            in.subtract(kills[id]);
            in.unionWith(uses[id]);
            if (out != outs[id] || in != ins[id]) {
                outs[id] = out;
                ins[id] = in;
                changed = true;
            }
        }
    }
}

void
Liveness::ensureUniverse(uint32_t vreg_bound)
{
    if (vreg_bound <= nv)
        return;
    uint32_t padded = paddedUniverse(vreg_bound);
    for (size_t i = 0; i < ins.size(); ++i) {
        ins[i].resize(padded);
        outs[i].resize(padded);
        uses[i].resize(padded);
        kills[i].resize(padded);
    }
    nv = padded;
}

void
Liveness::update(const Function &fn,
                 const std::vector<BlockId> &changed_blocks,
                 const PredecessorMap &preds)
{
    size_t table = ins.size();
    if (fn.blockTableSize() != table) {
        // New blocks appeared: no cheap patch, recompute.
        *this = Liveness(fn);
        return;
    }

    if (fn.numVregs() > nv) {
        uint32_t padded = paddedUniverse(fn.numVregs());
        for (size_t i = 0; i < table; ++i) {
            ins[i].resize(padded);
            outs[i].resize(padded);
            uses[i].resize(padded);
            kills[i].resize(padded);
        }
        nv = padded;
    }

    // Edge rewrites can shift reachability. Blocks that fell off the
    // CFG go to bottom (a from-scratch solve never visits them); blocks
    // that joined it count as changed so their facts get computed.
    std::vector<uint8_t> now(table, 0);
    for (BlockId id : fn.reversePostOrder())
        now[id] = 1;

    std::vector<BlockId> changed = changed_blocks;
    for (size_t i = 0; i < table; ++i) {
        if (reachableBits[i] && !now[i]) {
            ins[i].reset();
            outs[i].reset();
        } else if (!reachableBits[i] && now[i]) {
            changed.push_back(static_cast<BlockId>(i));
        }
    }
    reachableBits = now;

    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()),
                  changed.end());

    // Refresh the local facts of the changed blocks; removed or
    // unreachable ones just go (stay) empty.
    std::vector<uint8_t> is_seed(table, 0);
    std::vector<BlockId> seeds;
    for (BlockId c : changed) {
        if (c >= table)
            continue;
        const BasicBlock *bb = fn.block(c);
        if (!bb || !now[c]) {
            ins[c].reset();
            outs[c].reset();
            continue;
        }
        uses[c] = blockUses(*bb, nv);
        kills[c] = blockKills(*bb, nv);
        succs[c] = bb->successors();
        seeds.push_back(c);
        is_seed[c] = 1;
    }
    if (seeds.empty())
        return;

    // Liveness flows backward, so only blocks that can *reach* a
    // changed block can change solution. Collect that region over the
    // predecessor map.
    std::vector<uint8_t> in_region(table, 0);
    std::vector<BlockId> region = seeds;
    for (BlockId s : region)
        in_region[s] = 1;
    for (size_t qi = 0; qi < region.size(); ++qi) {
        for (BlockId p : preds[region[qi]]) {
            if (p < table && now[p] && !in_region[p]) {
                in_region[p] = 1;
                region.push_back(p);
            }
        }
    }

    // Condense the region into SCCs (iterative Tarjan over the succ
    // edges restricted to the region). Tarjan emits SCCs successors
    // first -- exactly the evaluation order a backward problem wants:
    // by the time an SCC is solved, every solution it reads is final.
    constexpr uint32_t kUnvisited = ~uint32_t(0);
    std::vector<uint32_t> index(table, kUnvisited);
    std::vector<uint32_t> low(table, 0);
    std::vector<uint8_t> on_stack(table, 0);
    std::vector<BlockId> scc_stack;
    std::vector<std::vector<BlockId>> sccs;
    uint32_t next_index = 0;

    struct Frame
    {
        BlockId b;
        size_t child;
    };
    std::vector<Frame> dfs;
    for (BlockId root : region) {
        if (index[root] != kUnvisited)
            continue;
        index[root] = low[root] = next_index++;
        scc_stack.push_back(root);
        on_stack[root] = 1;
        dfs.push_back({root, 0});
        while (!dfs.empty()) {
            Frame &f = dfs.back();
            if (f.child < succs[f.b].size()) {
                BlockId s = succs[f.b][f.child++];
                if (s >= table || !in_region[s])
                    continue;
                if (index[s] == kUnvisited) {
                    index[s] = low[s] = next_index++;
                    scc_stack.push_back(s);
                    on_stack[s] = 1;
                    dfs.push_back({s, 0});
                } else if (on_stack[s]) {
                    low[f.b] = std::min(low[f.b], index[s]);
                }
            } else {
                BlockId b = f.b;
                dfs.pop_back();
                if (!dfs.empty()) {
                    low[dfs.back().b] =
                        std::min(low[dfs.back().b], low[b]);
                }
                if (low[b] == index[b]) {
                    sccs.emplace_back();
                    while (true) {
                        BlockId m = scc_stack.back();
                        scc_stack.pop_back();
                        on_stack[m] = 0;
                        sccs.back().push_back(m);
                        if (m == b)
                            break;
                    }
                }
            }
        }
    }

    // Solve SCCs in emission order, change-driven: an SCC is recomputed
    // only if it holds a seed or reads a value that changed, and
    // propagation stops as soon as recomputation reproduces the old
    // solution. Cyclic SCCs reset to bottom first -- a warm start could
    // sustain a stale value around the cycle forever -- so the result
    // is the least fixed point, bit-identical to a from-scratch solve.
    std::vector<uint8_t> value_changed(table, 0);
    BitVector out_s(nv), in_s(nv);
    std::vector<BitVector> old_ins;

    for (const auto &scc : sccs) {
        bool needs = false;
        for (BlockId b : scc) {
            if (is_seed[b]) {
                needs = true;
                break;
            }
            for (BlockId s : succs[b]) {
                if (s < table && value_changed[s]) {
                    needs = true;
                    break;
                }
            }
            if (needs)
                break;
        }
        if (!needs)
            continue;

        bool cyclic = scc.size() > 1;
        if (!cyclic) {
            for (BlockId s : succs[scc[0]]) {
                if (s == scc[0])
                    cyclic = true;
            }
        }

        if (!cyclic) {
            BlockId b = scc[0];
            out_s.reset();
            for (BlockId s : succs[b])
                out_s.unionWith(ins[s]);
            in_s = out_s;
            in_s.subtract(kills[b]);
            in_s.unionWith(uses[b]);
            if (in_s != ins[b]) {
                ins[b] = in_s;
                value_changed[b] = 1;
            }
            outs[b] = out_s;
        } else {
            old_ins.clear();
            old_ins.reserve(scc.size());
            for (BlockId b : scc) {
                old_ins.push_back(ins[b]);
                ins[b].reset();
                outs[b].reset();
            }
            bool iter = true;
            while (iter) {
                iter = false;
                for (BlockId b : scc) {
                    out_s.reset();
                    for (BlockId s : succs[b])
                        out_s.unionWith(ins[s]);
                    in_s = out_s;
                    in_s.subtract(kills[b]);
                    in_s.unionWith(uses[b]);
                    if (out_s != outs[b] || in_s != ins[b]) {
                        outs[b] = out_s;
                        ins[b] = in_s;
                        iter = true;
                    }
                }
            }
            for (size_t i = 0; i < scc.size(); ++i) {
                if (ins[scc[i]] != old_ins[i])
                    value_changed[scc[i]] = 1;
            }
        }
    }
}

BitVector
Liveness::liveOutOf(const Function &fn, const BasicBlock &bb) const
{
    // Size to the universe this analysis was computed over: registers
    // allocated after construction cannot be live across blocks yet.
    (void)fn;
    BitVector out(nv);
    for (BlockId s : bb.successors())
        out.unionWith(ins.at(s));
    return out;
}

} // namespace chf
