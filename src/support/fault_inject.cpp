#include "support/fault_inject.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "support/cancellation.h"
#include "support/diagnostics.h"

namespace chf {

namespace {

/** Split "key:value" out of one comma-separated field. */
bool
splitField(const std::string &field, std::string *key, std::string *value)
{
    size_t colon = field.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= field.size()) {
        return false;
    }
    *key = field.substr(0, colon);
    *value = field.substr(colon + 1);
    return true;
}

} // namespace

bool
parseFaultSpec(const std::string &text, FaultSpec *out, std::string *err)
{
    FaultSpec spec;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t comma = text.find(',', pos);
        std::string field =
            text.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        pos = comma == std::string::npos ? text.size() + 1 : comma + 1;
        if (field.empty())
            continue;

        std::string key, value;
        if (!splitField(field, &key, &value)) {
            *err = concat("malformed fault field '", field,
                          "' (want key:value)");
            return false;
        }
        if (key == "phase") {
            spec.phase = value == "any" ? "" : value;
        } else if (key == "fn" || key == "occ") {
            char *end = nullptr;
            long n = std::strtol(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0' || n < 0) {
                *err = concat("bad fault occurrence '", value, "'");
                return false;
            }
            spec.occurrence = static_cast<int>(n);
        } else if (key == "kind") {
            if (value == "corrupt-ir") {
                spec.kind = FaultSpec::Kind::CorruptIr;
            } else if (value == "throw") {
                spec.kind = FaultSpec::Kind::Throw;
            } else if (value.rfind("stall:", 0) == 0) {
                char *end = nullptr;
                long ms = std::strtol(value.c_str() + 6, &end, 10);
                if (end == value.c_str() + 6 || *end != '\0' || ms < 0) {
                    *err = concat("bad stall duration in '", value,
                                  "' (want stall:<ms>)");
                    return false;
                }
                spec.kind = FaultSpec::Kind::Stall;
                spec.stallMs = static_cast<int>(ms);
            } else if (value == "transient" ||
                       value.rfind("transient:", 0) == 0) {
                spec.kind = FaultSpec::Kind::Transient;
                if (value.size() > 9 && value[9] == ':') {
                    char *end = nullptr;
                    long k = std::strtol(value.c_str() + 10, &end, 10);
                    if (end == value.c_str() + 10 || *end != '\0' ||
                        k < 1) {
                        *err = concat("bad transient count in '", value,
                                      "' (want transient:<k>, k >= 1)");
                        return false;
                    }
                    spec.transientFailures = static_cast<int>(k);
                }
            } else {
                *err = concat("unknown fault kind '", value,
                              "' (want corrupt-ir, throw, stall:<ms>, "
                              "or transient[:<k>])");
                return false;
            }
        } else {
            *err = concat("unknown fault field '", key, "'");
            return false;
        }
    }
    *out = spec;
    return true;
}

FaultInjector::FaultInjector()
{
    const char *env = std::getenv("CHF_FAULT");
    if (env != nullptr && env[0] != '\0') {
        FaultSpec parsed;
        std::string err;
        if (!parseFaultSpec(env, &parsed, &err))
            fatal(concat("CHF_FAULT: ", err));
        spec = parsed;
        isArmed = true;
    }
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::arm(const FaultSpec &new_spec)
{
    std::lock_guard<std::mutex> lock(mutex);
    spec = new_spec;
    isArmed = true;
    seen = 0;
    fired = 0;
    lastTransientAttempt = -1;
    lastFiredSite.clear();
}

void
FaultInjector::disarm()
{
    std::lock_guard<std::mutex> lock(mutex);
    isArmed = false;
    seen = 0;
    fired = 0;
    lastTransientAttempt = -1;
    lastFiredSite.clear();
}

bool
FaultInjector::armed() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return isArmed;
}

size_t
FaultInjector::firedCount() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return fired;
}

std::string
FaultInjector::lastSite() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return lastFiredSite;
}

namespace {

/** Unit index the current thread is compiling (-1 outside a session). */
thread_local int current_fault_unit = -1;

} // namespace

FaultUnitScope::FaultUnitScope(int unit_index)
    : previous(current_fault_unit)
{
    current_fault_unit = unit_index;
}

FaultUnitScope::~FaultUnitScope()
{
    current_fault_unit = previous;
}

int
FaultUnitScope::current()
{
    return current_fault_unit;
}

namespace {

/** Retry attempt the current thread is running (0 outside a scope). */
thread_local int current_fault_attempt = 0;

} // namespace

FaultAttemptScope::FaultAttemptScope(int attempt)
    : previous(current_fault_attempt)
{
    current_fault_attempt = attempt;
}

FaultAttemptScope::~FaultAttemptScope()
{
    current_fault_attempt = previous;
}

int
FaultAttemptScope::current()
{
    return current_fault_attempt;
}

void
FaultInjector::hook(const char *phase, Function &fn)
{
    FaultSpec::Kind kind;
    int stall_ms = 0;
    std::string site;

    // Decide-then-act: the match decision and counter updates happen
    // under the mutex, but the fault itself executes outside it — a
    // stalled unit sleeping seconds inside the hook must not serialize
    // every other unit's armed()/hook() calls.
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!isArmed)
            return;
        // At most one firing per arm(), whatever the matching mode:
        // the same phase name can appear both outside a session
        // (prepare's "unroll" transaction) and inside one, and must
        // not fire twice. Transient is the exception — it fires once
        // per *attempt* for the first transientFailures attempts, so
        // a retried unit re-encounters it deterministically.
        const bool transient = spec.kind == FaultSpec::Kind::Transient;
        if (fired > 0 && !transient)
            return;
        if (!spec.phase.empty() && spec.phase != phase)
            return;

        int unit = FaultUnitScope::current();
        if (unit >= 0) {
            // Session mode: fn:<n> names the unit, so the decision
            // depends only on which unit this thread is compiling —
            // identical at any thread count.
            if (unit != spec.occurrence)
                return;
        } else {
            // Legacy mode: n-th matching hook firing, in program order.
            // A transient retry replays the same hooks, so the counter
            // only advances on fresh (attempt-0) passes.
            if (transient && FaultAttemptScope::current() > 0) {
                // fall through to the attempt check below
            } else if (seen++ != spec.occurrence) {
                return;
            }
        }

        if (transient) {
            const int attempt = FaultAttemptScope::current();
            if (attempt >= spec.transientFailures)
                return; // attempt survived: the fault was transient
            if (attempt == lastTransientAttempt)
                return; // already fired on this attempt
            lastTransientAttempt = attempt;
        }

        ++fired;
        lastFiredSite = concat(phase, "#", spec.occurrence);
        kind = spec.kind;
        stall_ms = spec.stallMs;
        site = lastFiredSite;
    }

    if (kind == FaultSpec::Kind::Throw ||
        kind == FaultSpec::Kind::Transient) {
        const char *what = kind == FaultSpec::Kind::Throw
                               ? "injected fault (throw) at "
                               : "injected transient fault at ";
        Diagnostic d = Diagnostic::error(phase, concat(what, site));
        d.function = fn.name();
        throw RecoverableError(std::move(d));
    }

    if (kind == FaultSpec::Kind::Stall) {
        // Sleep the budget in small slices, polling the unit's
        // cancellation token: with a watchdog armed the stall aborts
        // within one slice of the timeout; without one it just sleeps
        // the full budget and the phase continues normally.
        const CancellationToken token = CancellationToken::current();
        const auto end = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(stall_ms);
        while (std::chrono::steady_clock::now() < end) {
            token.throwIfCancelled();
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        token.throwIfCancelled();
        return;
    }

    // corrupt-ir: empty out the last live block. An empty block is a
    // corruption every internal consumer tolerates structurally (no
    // out-of-range ids are introduced) but the verifier always flags,
    // so the enclosing guard must detect it and roll back.
    std::vector<BlockId> ids = fn.blockIds();
    if (ids.empty())
        return;
    fn.block(ids.back())->insts.clear();
}

} // namespace chf
