#include "support/thread_pool.h"

namespace chf {

ThreadPool::ThreadPool(size_t n)
{
    if (n <= 1)
        return; // inline mode: submit() runs tasks on the caller
    workers.reserve(n);
    for (size_t i = 0; i < n; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    if (workers.empty())
        return;
    {
        std::unique_lock<std::mutex> lock(mutex);
        stopping = true;
    }
    wake.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (workers.empty()) {
        task();
        completed.fetch_add(1);
        return;
    }
    {
        std::unique_lock<std::mutex> lock(mutex);
        queue.push_back(std::move(task));
    }
    wake.notify_one();
}

void
ThreadPool::waitIdle()
{
    if (workers.empty())
        return;
    std::unique_lock<std::mutex> lock(mutex);
    idle.wait(lock, [this] { return queue.empty() && inFlight == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            wake.wait(lock,
                      [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
            ++inFlight;
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mutex);
            --inFlight;
            completed.fetch_add(1);
            if (queue.empty() && inFlight == 0)
                idle.notify_all();
        }
    }
}

size_t
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<size_t>(n);
}

} // namespace chf
