/**
 * @file
 * Streaming 64-bit FNV-1a hasher for content-addressed caches.
 *
 * The trial-merge memo cache (hyperblock/merge.cpp) keys failed merge
 * attempts by the *contents* of the participating blocks: any committed
 * transform that touches a block changes its hash, so stale entries can
 * never be consulted — the cache is self-invalidating and needs no
 * eviction hooks. FNV-1a is not collision-free; callers must only cache
 * facts whose worst case under a collision is a wrong *negative* cost
 * decision, never a wrong transform (see DESIGN.md section 10 for why
 * the merge memo satisfies this).
 */

#ifndef CHF_SUPPORT_HASH_H
#define CHF_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "support/bitvector.h"

namespace chf {

/** Incremental FNV-1a over a stream of typed fields. */
class Hash64
{
  public:
    void
    bytes(const void *data, size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < n; ++i) {
            state ^= p[i];
            state *= 1099511628211ull;
        }
    }

    void
    u8(uint8_t v)
    {
        bytes(&v, sizeof(v));
    }

    void
    u32(uint32_t v)
    {
        bytes(&v, sizeof(v));
    }

    void
    u64(uint64_t v)
    {
        bytes(&v, sizeof(v));
    }

    /** Hash the exact bit pattern (distinguishes -0.0, NaN payloads). */
    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    /**
     * Hash the *set-bit contents* of @p bv, independent of its universe
     * size: padded and unpadded vectors with the same members hash
     * equal (the liveness universe grows by policy, not by content).
     */
    void
    bits(const BitVector &bv)
    {
        uint64_t count = 0;
        bv.forEach([&](uint32_t b) {
            u32(b);
            ++count;
        });
        u64(count);
    }

    uint64_t digest() const { return state; }

  private:
    uint64_t state = 14695981039346656037ull; // FNV offset basis
};

} // namespace chf

#endif // CHF_SUPPORT_HASH_H
