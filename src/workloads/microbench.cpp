/**
 * @file
 * The 24 microbenchmarks of Tables 1 and 2.
 *
 * Each TinyC program reproduces the control-flow structure the paper
 * attributes to its namesake (see each `note`); results are checksums
 * so the semantic-preservation tests can compare configurations.
 */

#include "workloads/workloads.h"

namespace chf {

const std::vector<Workload> &
microbenchmarks()
{
    static const std::vector<Workload> suite = {

        {"ammp_1",
         "outer loop over atoms; inner while loop with low, "
         "data-dependent trip count (the paper's best head-duplication "
         "candidate)",
         R"(
int nb[256];
int val[256];
int main() {
  int seed = 7;
  for (int i = 0; i < 256; i += 1) {
    seed = (seed * 1103515245 + 12345) % 2048;
    nb[i] = seed % 4;          // neighbor counts 0..3
    val[i] = seed % 97;
  }
  int energy = 0;
  for (int a = 0; a < 256; a += 1) {
    int k = 0;
    while (k < nb[a]) {        // while loop, ~1.5 mean trips
      energy += (val[a] * (k + 3)) % 251;
      k += 1;
    }
    energy += val[a];
  }
  return energy;
}
)",
         {},
         nullptr},

        {"ammp_2",
         "two sequential low-trip while loops per outer iteration",
         R"(
int na[200];
int nbq[200];
int q[200];
int main() {
  int seed = 3;
  for (int i = 0; i < 200; i += 1) {
    seed = (seed * 75 + 74) % 65537;
    na[i] = seed % 3;
    nbq[i] = (seed / 3) % 4;
    q[i] = seed % 113;
  }
  int force = 0;
  for (int a = 0; a < 200; a += 1) {
    int j = 0;
    while (j < na[a]) { force += q[a] * j; j += 1; }
    int k = 0;
    while (k < nbq[a]) { force += (q[a] + k) % 127; k += 1; }
  }
  return force;
}
)",
         {},
         nullptr},

        {"art_1",
         "neural-net f1 layer scan: weighted sum with a conditional "
         "clamp on each element",
         R"(
int wgt[512];
int inp[512];
int main() {
  int seed = 11;
  for (int i = 0; i < 512; i += 1) {
    seed = (seed * 1103515245 + 12345) % 4096;
    wgt[i] = seed % 200 - 100;
    inp[i] = (seed / 5) % 50;
  }
  int sum = 0;
  for (int r = 0; r < 12; r += 1) {
    for (int i = 0; i < 512; i += 1) {
      int p = wgt[i] * inp[i];
      if (p < 0) { p = 0; }     // reset-on-negative
      sum += p;
    }
  }
  return sum % 100000;
}
)",
         {},
         nullptr},

        {"art_2",
         "winner-take-all max-index search (compare-and-update branch)",
         R"(
int f2[400];
int main() {
  int seed = 5;
  for (int i = 0; i < 400; i += 1) {
    seed = (seed * 69069 + 1) % 32768;
    f2[i] = seed;
  }
  int winner = 0;
  for (int pass = 0; pass < 20; pass += 1) {
    int best = 0; int besti = 0;
    for (int i = 0; i < 400; i += 1) {
      if (f2[i] > best) { best = f2[i]; besti = i; }
    }
    winner += besti;
    f2[besti] = 0;
  }
  return winner;
}
)",
         {},
         nullptr},

        {"art_3",
         "normalization loop whose body mixes a guarded divide with "
         "accumulation",
         R"(
int act[300];
int main() {
  int seed = 17;
  for (int i = 0; i < 300; i += 1) {
    seed = (seed * 25173 + 13849) % 65536;
    act[i] = seed % 1000;
  }
  int norm = 0;
  for (int r = 0; r < 15; r += 1) {
    int total = 1;
    for (int i = 0; i < 300; i += 1) { total += act[i]; }
    for (int i = 0; i < 300; i += 1) {
      int scaled = act[i] * 4096 / total;
      if (scaled > 2048) { scaled = 2048; }
      norm += scaled;
    }
  }
  return norm % 999983;
}
)",
         {},
         nullptr},

        {"bzip2_1",
         "byte-frequency counting with a run-length inner while",
         R"(
int data[1024];
int freq[256];
int main() {
  int seed = 23;
  for (int i = 0; i < 1024; i += 1) {
    seed = (seed * 1103515245 + 12345) % 100000;
    data[i] = (seed / 7) % 256;
  }
  int i = 0;
  int runs = 0;
  while (i < 1024) {
    int b = data[i];
    freq[b] += 1;
    int j = i + 1;
    while (j < 1024 && data[j] == b) { j += 1; }  // short runs
    runs += j - i;
    i = j;
  }
  int sum = runs;
  for (int k = 0; k < 256; k += 1) { sum += freq[k] * k; }
  return sum % 1000003;
}
)",
         {},
         nullptr},

        {"bzip2_2",
         "comparison-heavy inner loop with data-dependent swaps "
         "(shell-sort fragment)",
         R"(
int arr[256];
int main() {
  int seed = 31;
  for (int i = 0; i < 256; i += 1) {
    seed = (seed * 69069 + 5) % 65536;
    arr[i] = seed;
  }
  int gap = 128;
  int moves = 0;
  while (gap > 0) {
    for (int i = gap; i < 256; i += 1) {
      int v = arr[i];
      int j = i;
      while (j >= gap && arr[j - gap] > v) {
        arr[j] = arr[j - gap];
        j -= gap;
        moves += 1;
      }
      arr[j] = v;
    }
    gap /= 2;
  }
  return moves + arr[0] + arr[255];
}
)",
         {},
         nullptr},

        {"bzip2_3",
         "main loop with an infrequently taken side block; the loop's "
         "final block holds the induction update, so excluding the side "
         "block forces tail duplication of the increment (the paper's "
         "depth-first/VLIW pathology)",
         R"(
int data[2048];
int out[2048];
int main() {
  int seed = 41;
  for (int i = 0; i < 2048; i += 1) {
    seed = (seed * 1103515245 + 12345) % 100000;
    data[i] = seed % 16;
  }
  int i = 0;
  int acc = 0;
  while (i < 2048) {
    int v = data[i];
    if (v == 0) {              // rare (~6%) but bulky: excluding it
      int r0 = data[(i + 7) % 2048];     // leaves no room to merge,
      int r1 = data[(i + 19) % 2048];    // so depth-first must tail-
      int r2 = data[(i + 37) % 2048];    // duplicate the merge block
      int r3 = data[(i + 53) % 2048];    // holding the increment
      int h = r0 * 3 + r1 * 5 + r2 * 7 + r3 * 11;
      h = (h ^ (h >> 4)) % 8191;
      h = h * 31 + (r0 & r1) - (r2 | r3);
      h = (h + i * 13) % 65521;
      h = h * h % 32749;
      h = (h << 2) - (h >> 3) + r0 * r3 - r1 * r2;
      acc += h % 509;
      out[i % 2048] = acc;
      out[(i + 1) % 2048] = h;
    }
    acc += v;
    i += 1;                    // induction update in the merge block
  }
  return acc;
}
)",
         {},
         nullptr},

        {"dct8x8",
         "8x8 integer DCT-like transform: dense counted loops, fully "
         "unrollable by the front end",
         R"(
int blockin[64];
int coeff[64];
int blockout[64];
int main() {
  int seed = 4;
  for (int i = 0; i < 64; i += 1) {
    seed = (seed * 75 + 74) % 65537;
    blockin[i] = seed % 256 - 128;
    coeff[i] = (seed % 17) - 8;
  }
  for (int rep = 0; rep < 16; rep += 1) {
    for (int u = 0; u < 8; u += 1) {
      for (int x = 0; x < 8; x += 1) {
        int s = 0;
        for (int k = 0; k < 8; k += 1) {
          s += blockin[u * 8 + k] * coeff[k * 8 + x];
        }
        blockout[u * 8 + x] = s >> 3;
      }
    }
  }
  int sum = 0;
  for (int i = 0; i < 64; i += 1) { sum += blockout[i]; }
  return sum;
}
)",
         {},
         nullptr},

        {"dhry",
         "Dhrystone-like mix: inlined calls, record copies, character "
         "scans, and small conditionals",
         R"(
int rec_a[16];
int rec_b[16];
int strbuf[32];
int ident(int x) { return x; }
int func1(int ch1, int ch2) {
  if (ch1 == ch2) { return 0; }
  return 1;
}
int func2(int pos) {
  int ch = strbuf[pos];
  if (func1(ch, 65) == 0) { return 1; }
  if (ch > 77) { return 2; }
  return 3;
}
int proc(int x) {
  if (x > 100) { return x - 100; }
  if (x > 50)  { return x - 50; }
  return x + 1;
}
int main() {
  for (int i = 0; i < 32; i += 1) { strbuf[i] = 65 + (i * 7) % 26; }
  int result = 0;
  for (int run = 0; run < 400; run += 1) {
    for (int i = 0; i < 16; i += 1) { rec_a[i] = run + i; }
    for (int i = 0; i < 16; i += 1) { rec_b[i] = rec_a[i]; }
    result += ident(rec_b[run % 16]);
    result += func2(run % 32);
    result = proc(result);
  }
  return result;
}
)",
         {},
         nullptr},

        {"doppler_GMTI",
         "GMTI doppler filtering: complex multiply-accumulate over "
         "interleaved re/im vectors",
         R"(
int sig_re[256];
int sig_im[256];
int w_re[256];
int w_im[256];
int main() {
  int seed = 9;
  for (int i = 0; i < 256; i += 1) {
    seed = (seed * 1103515245 + 12345) % 65536;
    sig_re[i] = seed % 200 - 100;
    sig_im[i] = (seed / 3) % 200 - 100;
    w_re[i] = (seed / 7) % 64 - 32;
    w_im[i] = (seed / 11) % 64 - 32;
  }
  int acc_re = 0; int acc_im = 0;
  for (int ch = 0; ch < 24; ch += 1) {
    for (int i = 0; i < 256; i += 1) {
      int ar = sig_re[i]; int ai = sig_im[i];
      int br = w_re[i];  int bi = w_im[i];
      acc_re += ar * br - ai * bi;
      acc_im += ar * bi + ai * br;
    }
  }
  return (acc_re % 100000) + (acc_im % 1000);
}
)",
         {},
         nullptr},

        {"equake_1",
         "sparse matrix-vector product with index indirection",
         R"(
int colidx[1200];
int a[1200];
int x[300];
int y[300];
int rowptr[301];
int main() {
  int seed = 13;
  for (int i = 0; i < 300; i += 1) { x[i] = i % 19 + 1; }
  for (int r = 0; r <= 300; r += 1) { rowptr[r] = r * 4; }
  for (int i = 0; i < 1200; i += 1) {
    seed = (seed * 69069 + 7) % 65536;
    colidx[i] = seed % 300;
    a[i] = seed % 40 - 20;
  }
  for (int rep = 0; rep < 20; rep += 1) {
    for (int r = 0; r < 300; r += 1) {
      int s = 0;
      for (int k = rowptr[r]; k < rowptr[r + 1]; k += 1) {
        s += a[k] * x[colidx[k]];
      }
      y[r] = s;
    }
  }
  int sum = 0;
  for (int r = 0; r < 300; r += 1) { sum += y[r]; }
  return sum;
}
)",
         {},
         nullptr},

        {"fft2_GMTI",
         "radix-2 butterfly passes: strided for loops whose residual "
         "test head duplication can merge (helps slightly in the paper)",
         R"(
int re[256];
int im[256];
int main() {
  int seed = 29;
  for (int i = 0; i < 256; i += 1) {
    seed = (seed * 75 + 74) % 65537;
    re[i] = seed % 128 - 64;
    im[i] = (seed / 5) % 128 - 64;
  }
  int span = 128;
  while (span >= 1) {
    for (int start = 0; start < 256; start += span * 2) {
      for (int k = 0; k < span; k += 1) {
        int i0 = start + k;
        int i1 = i0 + span;
        int tr = re[i0] - re[i1];
        int ti = im[i0] - im[i1];
        re[i0] = (re[i0] + re[i1]) >> 1;
        im[i0] = (im[i0] + im[i1]) >> 1;
        re[i1] = tr >> 1;
        im[i1] = ti >> 1;
      }
    }
    span /= 2;
  }
  int sum = 0;
  for (int i = 0; i < 256; i += 1) { sum += re[i] * 3 + im[i]; }
  return sum;
}
)",
         {},
         nullptr},

        {"fft4_GMTI",
         "radix-4 butterflies: wider straight-line bodies, shallower "
         "loop nest",
         R"(
int re[256];
int im[256];
int main() {
  int seed = 37;
  for (int i = 0; i < 256; i += 1) {
    seed = (seed * 1103515245 + 12345) % 65536;
    re[i] = seed % 100 - 50;
    im[i] = (seed / 9) % 100 - 50;
  }
  int span = 64;
  while (span >= 1) {
    for (int start = 0; start < 256; start += span * 4) {
      for (int k = 0; k < span; k += 1) {
        int a = start + k; int b = a + span;
        int c = b + span;  int d = c + span;
        int s0 = re[a] + re[c]; int s1 = re[b] + re[d];
        int d0 = re[a] - re[c]; int d1 = im[b] - im[d];
        re[a] = (s0 + s1) >> 2;
        re[b] = (d0 + d1) >> 2;
        re[c] = (s0 - s1) >> 2;
        re[d] = (d0 - d1) >> 2;
        int t0 = im[a] + im[c]; int t1 = im[b] + im[d];
        int u0 = im[a] - im[c]; int u1 = re[d] - re[b];
        im[a] = (t0 + t1) >> 2;
        im[b] = (u0 + u1) >> 2;
        im[c] = (t0 - t1) >> 2;
        im[d] = (u0 - u1) >> 2;
      }
    }
    span /= 4;
  }
  int sum = 0;
  for (int i = 0; i < 256; i += 1) { sum += re[i] + im[i] * 2; }
  return sum;
}
)",
         {},
         nullptr},

        {"forward_GMTI",
         "FIR forward filter: dense multiply-accumulate over a sliding "
         "window",
         R"(
int samples[512];
int taps[16];
int filtered[512];
int main() {
  int seed = 43;
  for (int i = 0; i < 512; i += 1) {
    seed = (seed * 69069 + 3) % 65536;
    samples[i] = seed % 256 - 128;
  }
  for (int t = 0; t < 16; t += 1) { taps[t] = (t * 13) % 31 - 15; }
  for (int rep = 0; rep < 8; rep += 1) {
    for (int i = 16; i < 512; i += 1) {
      int acc = 0;
      for (int t = 0; t < 16; t += 1) {
        acc += samples[i - t] * taps[t];
      }
      filtered[i] = acc >> 4;
    }
  }
  int sum = 0;
  for (int i = 0; i < 512; i += 1) { sum += filtered[i]; }
  return sum;
}
)",
         {},
         nullptr},

        {"gzip_1",
         "longest-match inner loop: a while with compound (&&) exit "
         "conditions that (IUPO) packs into one block in the paper",
         R"(
int window[2048];
int main() {
  int seed = 47;
  for (int i = 0; i < 2048; i += 1) {
    seed = (seed * 1103515245 + 12345) % 100000;
    window[i] = seed % 8;            // small alphabet -> real matches
  }
  int best = 0;
  for (int pos = 512; pos < 1536; pos += 3) {
    for (int cand = pos - 64; cand < pos; cand += 7) {
      int len = 0;
      while (len < 32 && window[cand + len] == window[pos + len]) {
        len += 1;
      }
      if (len > best) { best = len; }
    }
  }
  return best;
}
)",
         {},
         nullptr},

        {"gzip_2",
         "hash-chain insertion loop with conditional chain resets",
         R"(
int text[1024];
int headtab[64];
int prevtab[1024];
int main() {
  int seed = 53;
  for (int i = 0; i < 1024; i += 1) {
    seed = (seed * 75 + 74) % 65537;
    text[i] = seed % 32;
  }
  for (int h = 0; h < 64; h += 1) { headtab[h] = 0 - 1; }
  int chains = 0;
  for (int i = 0; i < 1021; i += 1) {
    int h = (text[i] * 4 + text[i + 1] * 2 + text[i + 2]) % 64;
    int prev = headtab[h];
    if (prev >= 0) {
      prevtab[i] = prev;
      chains += 1;
    } else {
      prevtab[i] = i;
    }
    headtab[h] = i;
  }
  int sum = chains;
  for (int i = 0; i < 1021; i += 1) { sum += prevtab[i] % 7; }
  return sum;
}
)",
         {},
         nullptr},

        {"matrix_1",
         "the 10x10 integer matrix multiply of the paper",
         R"(
int A[100];
int B[100];
int C[100];
int main() {
  for (int i = 0; i < 100; i += 1) {
    A[i] = (i * 7) % 13 - 6;
    B[i] = (i * 11) % 17 - 8;
  }
  for (int rep = 0; rep < 40; rep += 1) {
    for (int i = 0; i < 10; i += 1) {
      for (int j = 0; j < 10; j += 1) {
        int s = 0;
        for (int k = 0; k < 10; k += 1) {
          s += A[i * 10 + k] * B[k * 10 + j];
        }
        C[i * 10 + j] = s;
      }
    }
  }
  int sum = 0;
  for (int i = 0; i < 100; i += 1) { sum += C[i]; }
  return sum;
}
)",
         {},
         nullptr},

        {"parser_1",
         "loop with several rarely taken, long-dependence-height paths: "
         "the VLIW heuristic excludes them and pays an 11x misprediction "
         "increase in the paper",
         R"(
int tokens[1024];
int table[256];
int main() {
  int seed = 59;
  for (int i = 0; i < 1024; i += 1) {
    seed = (seed * 1103515245 + 12345) % 100000;
    tokens[i] = seed % 64;
  }
  for (int i = 0; i < 256; i += 1) { table[i] = (i * 37) % 101; }
  int score = 0;
  for (int rep = 0; rep < 6; rep += 1) {
    for (int i = 0; i < 1024; i += 1) {
      int t = tokens[i];
      if (t == 0) {                     // ~1.5%: deep dependent chain
        int x = table[(i + rep) % 256];
        x = x * 17 + 3; x = x / 5 + x % 7; x = x * x % 251;
        score += x;
      } else if (t == 1) {              // ~1.5%: another deep chain
        int y = table[(i * 3) % 256];
        y = y / 3 + 11; y = y * 13 % 509; y = y + y / 2;
        score += y;
      } else {
        score += t;                     // hot path: trivial
      }
    }
  }
  return score;
}
)",
         {},
         nullptr},

        {"sieve",
         "the prime sieve of the paper: flag clearing with a strided "
         "inner loop and a count loop",
         R"(
int flags[2048];
int main() {
  int count = 0;
  for (int rep = 0; rep < 4; rep += 1) {
    for (int i = 0; i < 2048; i += 1) { flags[i] = 1; }
    count = 0;
    for (int p = 2; p < 2048; p += 1) {
      if (flags[p]) {
        count += 1;
        for (int m = p + p; m < 2048; m += p) { flags[m] = 0; }
      }
    }
  }
  return count;
}
)",
         {},
         nullptr},

        {"transpose_GMTI",
         "corner-turn (matrix transpose) of the GMTI pipeline",
         R"(
int src[1024];
int dst[1024];
int main() {
  for (int i = 0; i < 1024; i += 1) { src[i] = (i * 29) % 257; }
  int sum = 0;
  for (int rep = 0; rep < 12; rep += 1) {
    for (int r = 0; r < 32; r += 1) {
      for (int c = 0; c < 32; c += 1) {
        dst[c * 32 + r] = src[r * 32 + c];
      }
    }
    sum += dst[rep * 33 % 1024];
  }
  return sum;
}
)",
         {},
         nullptr},

        {"twolf_1",
         "placement cost evaluation: chained conditionals on window "
         "bounds per cell",
         R"(
int xpos[400];
int ypos[400];
int main() {
  int seed = 61;
  for (int i = 0; i < 400; i += 1) {
    seed = (seed * 69069 + 11) % 65536;
    xpos[i] = seed % 200;
    ypos[i] = (seed / 7) % 200;
  }
  int cost = 0;
  for (int rep = 0; rep < 10; rep += 1) {
    for (int i = 0; i < 400; i += 1) {
      int x = xpos[i]; int y = ypos[i];
      int penalty = 0;
      if (x < 20)  { penalty += 20 - x; }
      if (x > 180) { penalty += x - 180; }
      if (y < 20)  { penalty += 20 - y; }
      if (y > 180) { penalty += y - 180; }
      if (penalty > 0 && (x + y) % 3 == 0) { penalty *= 2; }
      cost += penalty + (x * y) % 16;
    }
  }
  return cost;
}
)",
         {},
         nullptr},

        {"twolf_3",
         "annealing accept/reject loop: pseudo-random swaps with a "
         "threshold branch",
         R"(
int cells[256];
int main() {
  for (int i = 0; i < 256; i += 1) { cells[i] = (i * 53) % 256; }
  int seed = 67;
  int energy = 5000;
  int accepted = 0;
  for (int step = 0; step < 4000; step += 1) {
    seed = (seed * 1103515245 + 12345) % 2147483647;
    int a = seed % 256;
    int b = (seed / 256) % 256;
    int delta = (cells[a] - cells[b]) % 64;
    if (delta < 0) {
      int t = cells[a]; cells[a] = cells[b]; cells[b] = t;
      energy += delta;
      accepted += 1;
    } else if ((seed / 65536) % 100 < 10) {   // uphill ~10%
      energy += delta;
      accepted += 1;
    }
  }
  return energy + accepted;
}
)",
         {},
         nullptr},

        {"vadd",
         "vector add: the simplest dense counted loop",
         R"(
int va[1024];
int vb[1024];
int vc[1024];
int main() {
  for (int i = 0; i < 1024; i += 1) {
    va[i] = i % 97;
    vb[i] = (i * 3) % 89;
  }
  for (int rep = 0; rep < 10; rep += 1) {
    for (int i = 0; i < 1024; i += 1) {
      vc[i] = va[i] + vb[i];
    }
  }
  int sum = 0;
  for (int i = 0; i < 1024; i += 1) { sum += vc[i]; }
  return sum;
}
)",
         {},
         nullptr},
    };
    return suite;
}

} // namespace chf
