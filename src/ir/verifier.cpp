#include "ir/verifier.h"

#include "ir/printer.h"
#include "support/fatal.h"

namespace chf {

namespace {

void
checkInst(const Function &fn, const BasicBlock &bb, size_t idx,
          const Instruction &inst, std::vector<std::string> &problems)
{
    auto complain = [&](const std::string &what) {
        problems.push_back(concat("bb", bb.id(), "[", idx, "] ",
                                  toString(inst), ": ", what));
    };

    auto check_reg = [&](Vreg v, const char *what) {
        if (v != kNoVreg && v >= fn.numVregs())
            complain(concat(what, " register v", v, " out of range"));
    };

    // Destination shape.
    if (opcodeHasDest(inst.op)) {
        if (inst.dest == kNoVreg)
            complain("missing destination");
        check_reg(inst.dest, "dest");
    } else if (inst.dest != kNoVreg) {
        complain("unexpected destination");
    }

    // Source shape: the first numSrcs operands must be present (Ret's
    // value is optional), the rest must be empty.
    int nsrcs = inst.numSrcs();
    for (int i = 0; i < 3; ++i) {
        const Operand &src = inst.srcs[i];
        if (i < nsrcs) {
            if (src.isNone() && inst.op != Opcode::Ret)
                complain(concat("missing source operand ", i));
            if (src.isReg())
                check_reg(src.reg, "source");
        } else if (!src.isNone()) {
            complain(concat("unexpected source operand ", i));
        }
    }

    if (inst.pred.valid())
        check_reg(inst.pred.reg, "predicate");

    if (inst.op == Opcode::Br) {
        if (inst.target == kNoBlock ||
            inst.target >= fn.blockTableSize() ||
            fn.block(inst.target) == nullptr) {
            complain("branch to dead or invalid block");
        }
    } else if (inst.target != kNoBlock) {
        complain("non-branch carries a target");
    }
}

} // namespace

std::vector<std::string>
verify(const Function &fn)
{
    std::vector<std::string> problems;

    if (fn.entry() == kNoBlock || fn.entry() >= fn.blockTableSize() ||
        fn.block(fn.entry()) == nullptr) {
        problems.push_back("function has no live entry block");
        return problems;
    }

    for (Vreg arg : fn.argRegs) {
        if (arg >= fn.numVregs())
            problems.push_back(concat("arg register v", arg,
                                      " out of range"));
    }

    for (BlockId id : fn.blockIds()) {
        const BasicBlock &bb = *fn.block(id);
        if (bb.insts.empty()) {
            problems.push_back(concat("bb", id, " is empty"));
            continue;
        }

        size_t branches = 0;
        size_t unpredicated_branches = 0;
        for (size_t i = 0; i < bb.insts.size(); ++i) {
            const Instruction &inst = bb.insts[i];
            checkInst(fn, bb, i, inst, problems);
            if (inst.isBranch()) {
                ++branches;
                if (!inst.pred.valid())
                    ++unpredicated_branches;
            }
        }
        if (branches == 0)
            problems.push_back(concat("bb", id, " has no branch or ret"));
        if (unpredicated_branches > 1) {
            problems.push_back(concat("bb", id, " has ",
                                      unpredicated_branches,
                                      " unpredicated branches"));
        }
    }
    return problems;
}

void
verifyOrDie(const Function &fn, const std::string &context)
{
    auto problems = verify(fn);
    if (!problems.empty()) {
        panic(concat("IR verification failed (", context,
                     "): ", problems.front(), " [", problems.size(),
                     " problem(s) total]"));
    }
}

} // namespace chf
