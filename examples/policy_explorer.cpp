/**
 * @file
 * Explore block-selection policies on any registered workload: compile
 * it under every heuristic and compare block counts, code growth,
 * misprediction rates, and cycles.
 *
 * Run: ./policy_explorer [workload-name]
 *      ./policy_explorer --list
 */

#include <cstdio>
#include <cstring>

#include "pipeline/session.h"
#include "sim/functional_sim.h"
#include "sim/timing_sim.h"
#include "support/table.h"
#include "workloads/workloads.h"

using namespace chf;

namespace {

Program
cloneProgram(const Program &program)
{
    Program copy;
    copy.fn = program.fn.clone();
    copy.memory = program.memory;
    copy.defaultArgs = program.defaultArgs;
    return copy;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
        std::printf("microbenchmarks:\n");
        for (const auto &w : microbenchmarks())
            std::printf("  %-16s %s\n", w.name.c_str(), w.note.c_str());
        std::printf("SPEC-like:\n");
        for (const auto &w : speclikeBenchmarks())
            std::printf("  %-16s %s\n", w.name.c_str(), w.note.c_str());
        return 0;
    }

    const char *name = argc > 1 ? argv[1] : "bzip2_3";
    const Workload *workload = findWorkload(name);
    if (!workload) {
        std::fprintf(stderr,
                     "unknown workload '%s' (try --list)\n", name);
        return 1;
    }

    std::printf("workload %s: %s\n\n", workload->name.c_str(),
                workload->note.c_str());

    Program base = buildWorkload(*workload);
    ProfileData profile = prepareProgram(base);
    FuncSimResult oracle = runFunctional(base);
    TimingResult bb_timing = runTiming(base);
    FuncSimResult bb_run = runFunctional(base);

    TextTable table;
    table.setHeader({"policy", "blocks", "static insts", "blocks exec",
                     "mispredict%", "cycles", "vs BB"});
    table.addRow({"basic blocks", std::to_string(base.fn.numBlocks()),
                  std::to_string(base.fn.totalInsts()),
                  std::to_string(bb_run.blocksExecuted),
                  TextTable::fmt(bb_timing.mispredictRate() * 100, 2),
                  std::to_string(bb_timing.cycles), "--"});

    const std::pair<const char *, PolicyKind> policies[] = {
        {"VLIW path-based", PolicyKind::Vliw},
        {"VLIW convergent", PolicyKind::VliwConvergent},
        {"depth-first", PolicyKind::DepthFirst},
        {"breadth-first", PolicyKind::BreadthFirst},
    };

    // One session unit per policy, compiled as a batch.
    Session session;
    for (const auto &[label, policy] : policies) {
        session.addProgram(cloneProgram(base), profile, label,
                           SessionOptions()
                               .withPipeline(Pipeline::IUPO_fused)
                               .withPolicy(policy));
    }
    session.compile();

    for (size_t unit = 0; unit < session.size(); ++unit) {
        const char *label = policies[unit].first;
        const Program &program = session.program(unit);

        FuncSimResult run = runFunctional(program);
        TimingResult timing = runTiming(program);
        if (run.returnValue != oracle.returnValue ||
            run.memoryHash != oracle.memoryHash) {
            std::fprintf(stderr, "BUG: %s changed semantics\n", label);
            return 1;
        }
        double pct = 100.0 *
                     (static_cast<double>(bb_timing.cycles) -
                      static_cast<double>(timing.cycles)) /
                     static_cast<double>(bb_timing.cycles);
        table.addRow({label, std::to_string(program.fn.numBlocks()),
                      std::to_string(program.fn.totalInsts()),
                      std::to_string(run.blocksExecuted),
                      TextTable::fmt(timing.mispredictRate() * 100, 2),
                      std::to_string(timing.cycles),
                      TextTable::pct(pct) + "%"});
    }

    std::printf("%s", table.render().c_str());
    std::printf("\nNotes: depth-first and VLIW exclude cold paths, so "
                "they tail-duplicate merge points (including loop "
                "induction updates -- the paper's bzip2_3 effect) and "
                "leave rarely-taken exits as unpredictable branches "
                "(parser_1). Breadth-first merges whole diamonds and "
                "removes the branches instead.\n");
    return 0;
}
