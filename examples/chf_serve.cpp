/**
 * @file
 * chf_serve — the long-lived compile daemon and its replay client.
 *
 * The daemon wraps chf::CompileServer (pipeline/server.h) in a
 * transport: newline-delimited JSON requests, one response line per
 * request line. Protocol and knobs: docs/operations.md.
 *
 *   chf_serve --stdio                      serve stdin/stdout
 *   chf_serve --socket=/tmp/chf.sock       unix-socket daemon
 *   chf_serve --connect=/tmp/chf.sock \
 *             --replay=requests.ndjson \
 *             --concurrency=8 --summary    replay client
 *
 * Server knobs (daemon modes):
 *   --threads=N       session workers per compile (default 1)
 *   --cache-cap=N     LRU compile-cache entries (default 256)
 *   --max-inflight=N  concurrent compiles before shedding (default 8)
 *   --timeout-ms=N    default per-request budget (default none)
 *   --no-backend      formation only, skip regalloc/fanout/schedule
 *
 * Client mode sends every line of --replay (stdin if omitted) over
 * --concurrency connections, prints each response, and with --summary
 * tallies statuses — scripts/check_server.sh and the throughput bench
 * drive the campaign this way.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "pipeline/server.h"

using namespace chf;

namespace {

volatile std::sig_atomic_t g_stop = 0;
const char *g_socket_path = nullptr;

void
onSignal(int)
{
    // unlink is async-signal-safe; drop the socket so a restart can
    // bind again, then let the default teardown happen.
    if (g_socket_path)
        unlink(g_socket_path);
    g_stop = 1;
    _exit(0);
}

bool
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = write(fd, data.data() + off, data.size() - off);
        if (n <= 0)
            return false;
        off += static_cast<size_t>(n);
    }
    return true;
}

/** Buffered newline framing over a file descriptor. */
struct LineReader
{
    int fd;
    std::string buf;

    bool
    readLine(std::string *out)
    {
        for (;;) {
            size_t nl = buf.find('\n');
            if (nl != std::string::npos) {
                *out = buf.substr(0, nl);
                buf.erase(0, nl + 1);
                return true;
            }
            char chunk[4096];
            ssize_t n = read(fd, chunk, sizeof chunk);
            if (n <= 0)
                return false;
            buf.append(chunk, static_cast<size_t>(n));
        }
    }
};

void
serveConnection(CompileServer *server, int fd)
{
    LineReader reader{fd, {}};
    std::string line;
    while (reader.readLine(&line)) {
        if (line.empty())
            continue;
        if (!sendAll(fd, server->handle(line) + "\n"))
            break;
    }
    close(fd);
}

int
runSocketDaemon(CompileServer &server, const char *path)
{
    int listener = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0) {
        std::perror("socket");
        return 1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (std::strlen(path) >= sizeof addr.sun_path) {
        std::fprintf(stderr, "socket path too long: %s\n", path);
        return 1;
    }
    std::strcpy(addr.sun_path, path);
    unlink(path);
    if (bind(listener, reinterpret_cast<sockaddr *>(&addr),
             sizeof addr) != 0) {
        std::perror("bind");
        return 1;
    }
    if (listen(listener, 64) != 0) {
        std::perror("listen");
        return 1;
    }
    g_socket_path = path;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::fprintf(stderr, "chf_serve: listening on %s\n", path);

    while (!g_stop) {
        int fd = accept(listener, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::thread(serveConnection, &server, fd).detach();
    }
    close(listener);
    unlink(path);
    return 0;
}

int
runStdio(CompileServer &server)
{
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        std::string response = server.handle(line);
        std::fwrite(response.data(), 1, response.size(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
    }
    return 0;
}

int
connectTo(const char *path)
{
    int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (std::strlen(path) >= sizeof addr.sun_path) {
        close(fd);
        return -1;
    }
    std::strcpy(addr.sun_path, path);
    if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                sizeof addr) != 0) {
        close(fd);
        return -1;
    }
    return fd;
}

/** "status":"xyz" value of a response line (crude but sufficient). */
std::string
responseStatus(const std::string &response)
{
    size_t at = response.find("\"status\":\"");
    if (at == std::string::npos)
        return "?";
    at += 10;
    size_t end = response.find('"', at);
    return response.substr(at, end - at);
}

int
runClient(const char *path, const char *replay_file, int concurrency,
          bool summary, bool quiet)
{
    std::vector<std::string> requests;
    if (replay_file) {
        std::ifstream in(replay_file);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", replay_file);
            return 1;
        }
        std::string line;
        while (std::getline(in, line))
            if (!line.empty())
                requests.push_back(line);
    } else {
        std::string line;
        while (std::getline(std::cin, line))
            if (!line.empty())
                requests.push_back(line);
    }
    if (requests.empty()) {
        std::fprintf(stderr, "no requests to send\n");
        return 1;
    }
    if (concurrency < 1)
        concurrency = 1;

    std::vector<std::string> responses(requests.size());
    std::atomic<size_t> next{0};
    std::atomic<int> failures{0};

    auto worker = [&] {
        int fd = connectTo(path);
        if (fd < 0) {
            failures.fetch_add(1);
            return;
        }
        LineReader reader{fd, {}};
        for (;;) {
            size_t i = next.fetch_add(1);
            if (i >= requests.size())
                break;
            if (!sendAll(fd, requests[i] + "\n") ||
                !reader.readLine(&responses[i])) {
                failures.fetch_add(1);
                break;
            }
        }
        close(fd);
    };

    std::vector<std::thread> threads;
    for (int t = 0; t < concurrency; ++t)
        threads.emplace_back(worker);
    for (std::thread &t : threads)
        t.join();

    size_t ok = 0, shed = 0, timeout = 0, error = 0, cached = 0,
           other = 0;
    for (const std::string &r : responses) {
        if (!quiet)
            std::printf("%s\n", r.c_str());
        std::string status = responseStatus(r);
        if (status == "ok")
            ++ok;
        else if (status == "shed")
            ++shed;
        else if (status == "timeout")
            ++timeout;
        else if (status == "error")
            ++error;
        else
            ++other;
        if (r.find("\"cached\":true") != std::string::npos)
            ++cached;
    }
    if (summary) {
        std::printf("summary: sent=%zu ok=%zu shed=%zu timeout=%zu "
                    "error=%zu other=%zu cached=%zu conn_failures=%d\n",
                    requests.size(), ok, shed, timeout, error, other,
                    cached, failures.load());
    }
    return failures.load() == 0 && other == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool stdio = false;
    bool summary = false;
    bool quiet = false;
    const char *socket_path = nullptr;
    const char *connect_path = nullptr;
    const char *replay_file = nullptr;
    int concurrency = 1;
    ServerOptions opts;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--stdio") == 0)
            stdio = true;
        else if (std::strncmp(a, "--socket=", 9) == 0)
            socket_path = a + 9;
        else if (std::strncmp(a, "--connect=", 10) == 0)
            connect_path = a + 10;
        else if (std::strncmp(a, "--replay=", 9) == 0)
            replay_file = a + 9;
        else if (std::strncmp(a, "--concurrency=", 14) == 0)
            concurrency = std::atoi(a + 14);
        else if (std::strcmp(a, "--summary") == 0)
            summary = true;
        else if (std::strcmp(a, "--quiet") == 0)
            quiet = true;
        else if (std::strncmp(a, "--threads=", 10) == 0)
            opts.threads = std::atoi(a + 10);
        else if (std::strncmp(a, "--cache-cap=", 12) == 0)
            opts.cacheCapacity =
                static_cast<size_t>(std::atoll(a + 12));
        else if (std::strncmp(a, "--max-inflight=", 15) == 0)
            opts.maxInFlight = std::atoi(a + 15);
        else if (std::strncmp(a, "--timeout-ms=", 13) == 0)
            opts.defaultTimeoutMs = std::atoi(a + 13);
        else if (std::strcmp(a, "--no-backend") == 0)
            opts.runBackend = false;
        else {
            std::fprintf(stderr, "unknown flag %s\n", a);
            return 1;
        }
    }

    if (connect_path)
        return runClient(connect_path, replay_file, concurrency,
                         summary, quiet);

    CompileServer server(opts);
    if (socket_path)
        return runSocketDaemon(server, socket_path);
    if (stdio)
        return runStdio(server);

    std::fprintf(stderr,
                 "usage: chf_serve --stdio | --socket=PATH "
                 "[server flags]\n"
                 "       chf_serve --connect=PATH [--replay=FILE] "
                 "[--concurrency=N] [--summary] [--quiet]\n");
    return 1;
}
