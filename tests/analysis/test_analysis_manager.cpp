/**
 * @file
 * AnalysisManager tests: every cached analysis must stay bit-identical
 * to a freshly built one after each invalidation event, including the
 * blockAbsorbed fast path that patches dominators and loops in place.
 */

#include <gtest/gtest.h>

#include "analysis/analysis_manager.h"
#include "analysis/dominators.h"
#include "analysis/liveness.h"
#include "analysis/loops.h"
#include "frontend/lowering.h"
#include "hyperblock/convergent.h"
#include "hyperblock/merge.h"
#include "ir/builder.h"
#include "transform/cfg_utils.h"
#include "transform/reverse_if_convert.h"

namespace chf {
namespace {

/** entry -> head -> (body -> head) | exit; a classic while loop. */
Function
makeLoop()
{
    Function fn;
    IRBuilder b(fn);
    BlockId entry = b.makeBlock("entry");
    BlockId head = b.makeBlock("head");
    BlockId body = b.makeBlock("body");
    BlockId exit = b.makeBlock("exit");
    fn.setEntry(entry);

    Vreg i = fn.newVreg();
    b.setBlock(entry);
    b.movTo(i, IRBuilder::imm(0));
    b.br(head);
    b.setBlock(head);
    Vreg t = b.binary(Opcode::Tlt, IRBuilder::r(i), IRBuilder::imm(10));
    b.brCond(t, body, exit);
    b.setBlock(body);
    Vreg next = b.add(IRBuilder::r(i), IRBuilder::imm(1));
    b.movTo(i, IRBuilder::r(next));
    b.br(head);
    b.setBlock(exit);
    b.ret(IRBuilder::r(i));
    return fn;
}

/** Compare cached liveness to a fresh solve, ignoring universe padding. */
void
expectLivenessMatchesFresh(AnalysisManager &am, const Function &fn)
{
    const Liveness &cached = am.liveness();
    Liveness fresh(fn);
    ASSERT_GE(cached.universe(), fn.numVregs());
    for (BlockId id : fn.blockIds()) {
        for (Vreg v = 0; v < fn.numVregs(); ++v) {
            EXPECT_EQ(cached.liveIn(id).test(v), fresh.liveIn(id).test(v))
                << "live-in mismatch bb" << id << " v" << v;
            EXPECT_EQ(cached.liveOut(id).test(v),
                      fresh.liveOut(id).test(v))
                << "live-out mismatch bb" << id << " v" << v;
        }
    }
}

/** Compare cached dominators/loops/preds to freshly built ones. */
void
expectCfgAnalysesMatchFresh(AnalysisManager &am, const Function &fn)
{
    EXPECT_EQ(am.predecessors(), fn.predecessors());

    const DominatorTree &cached = am.dominators();
    DominatorTree fresh(fn);
    for (BlockId id = 0; id < fn.blockTableSize(); ++id) {
        EXPECT_EQ(cached.reachable(id), fresh.reachable(id))
            << "reachability mismatch bb" << id;
        EXPECT_EQ(cached.idom(id), fresh.idom(id))
            << "idom mismatch bb" << id;
        for (BlockId other = 0; other < fn.blockTableSize(); ++other) {
            EXPECT_EQ(cached.dominates(id, other),
                      fresh.dominates(id, other))
                << "dominates mismatch bb" << id << " bb" << other;
        }
    }

    const LoopInfo &cached_loops = am.loops();
    LoopInfo fresh_loops(fn);
    ASSERT_EQ(cached_loops.loops().size(), fresh_loops.loops().size());
    // Compare loop-by-loop keyed by header: the relative order of
    // unrelated loops is not observable through the query interface.
    for (const Loop &want : fresh_loops.loops()) {
        const Loop *got = cached_loops.loopAt(want.header);
        ASSERT_NE(got, nullptr) << "missing loop at bb" << want.header;
        EXPECT_EQ(got->blocks, want.blocks)
            << "loop body mismatch at bb" << want.header;
        EXPECT_EQ(got->latches, want.latches)
            << "latch mismatch at bb" << want.header;
        EXPECT_EQ(got->depth, want.depth);
    }
    for (BlockId id = 0; id < fn.blockTableSize(); ++id)
        EXPECT_EQ(cached_loops.depth(id), fresh_loops.depth(id));
}

TEST(AnalysisManager, PredecessorsPatchedAfterBranchRewrite)
{
    Function fn = makeLoop();
    AnalysisManager am(fn, true);
    am.predecessors(); // warm the cache

    // Retarget body -> head to body -> exit (kills the loop).
    BasicBlock *body = fn.block(2);
    std::vector<BlockId> old_succs = body->successors();
    redirectBranches(*body, 1, 3);
    am.branchesRewritten(2, old_succs);

    EXPECT_EQ(am.predecessors(), fn.predecessors());
    expectCfgAnalysesMatchFresh(am, fn);
    expectLivenessMatchesFresh(am, fn);
}

TEST(AnalysisManager, BranchRewriteWithSameEdgesKeepsDominators)
{
    Function fn = makeLoop();
    AnalysisManager am(fn, true);
    const DominatorTree *before = &am.dominators();

    // Rewriting a block without changing its successor set must not
    // invalidate the dominator tree.
    BasicBlock *body = fn.block(2);
    std::vector<BlockId> old_succs = body->successors();
    am.branchesRewritten(2, old_succs);
    EXPECT_EQ(&am.dominators(), before);
}

TEST(AnalysisManager, BlockRemovedInvalidatesDominators)
{
    Function fn = makeLoop();
    AnalysisManager am(fn, true);
    am.dominators();
    am.loops();
    am.liveness();

    // Disconnect and remove the loop body.
    BasicBlock *head = fn.block(1);
    std::vector<BlockId> head_old = head->successors();
    redirectBranches(*head, 2, 3);
    am.branchesRewritten(1, head_old);
    BasicBlock *body = fn.block(2);
    std::vector<BlockId> body_succs = body->successors();
    fn.removeBlock(2);
    am.blockRemoved(2, body_succs);

    expectCfgAnalysesMatchFresh(am, fn);
    expectLivenessMatchesFresh(am, fn);
}

TEST(AnalysisManager, BlockAbsorbedPatchMatchesFreshBuild)
{
    // A simple merge inside a loop: head absorbs its single-predecessor
    // successor. The dominator tree and loop info must be patched to
    // exactly what a fresh build over the new CFG produces.
    Program p = compileTinyC(R"(
int main() {
  int s = 0;
  for (int i = 0; i < 8; i += 1) {
    s += i;
    if ((s & 1) == 1) { s += 3; }
  }
  return s;
}
)");
    Function &fn = p.fn;
    MergeOptions opts;
    opts.useAnalysisCache = true;
    MergeEngine engine(fn, opts);
    AnalysisManager &am = engine.analyses();
    am.dominators();
    am.loops();
    am.liveness();

    // Drive real merges until no pair merges any more; check the cache
    // against fresh analyses after every committed mutation.
    size_t merged;
    do {
        merged = 0;
        for (BlockId hb : fn.reversePostOrder()) {
            if (!fn.block(hb))
                continue;
            for (BlockId s : fn.block(hb)->successors()) {
                if (engine.tryMerge(hb, s).success) {
                    ++merged;
                    expectCfgAnalysesMatchFresh(am, fn);
                    expectLivenessMatchesFresh(am, fn);
                    break;
                }
            }
        }
    } while (merged > 0);
    EXPECT_GT(engine.stats().get("blocksMerged"), 0);
}

TEST(AnalysisManager, SplitBlockThenInvalidateAll)
{
    Program p = compileTinyC(R"(
int main() {
  int a = 1; int b = 2; int c = 3; int d = 4;
  int e = a + b; int f = c + d; int g = e * f;
  int h = g + a; int i = h * b; int j = i + c;
  return j;
}
)");
    Function &fn = p.fn;
    AnalysisManager am(fn, true);
    am.dominators();
    am.loops();
    am.liveness();

    BlockId rest = splitBlockAt(fn, fn.entry(), 4);
    am.invalidateAll();
    if (rest != kNoBlock) {
        expectCfgAnalysesMatchFresh(am, fn);
        expectLivenessMatchesFresh(am, fn);
    }
}

TEST(AnalysisManager, DisabledCacheAlwaysFresh)
{
    Function fn = makeLoop();
    AnalysisManager am(fn, false);
    EXPECT_FALSE(am.cachingEnabled());
    am.dominators();
    am.loops();

    // Mutate WITHOUT reporting: a disabled cache must still answer
    // from the current CFG.
    BasicBlock *body = fn.block(2);
    redirectBranches(*body, 1, 3);

    expectCfgAnalysesMatchFresh(am, fn);
    expectLivenessMatchesFresh(am, fn);
}

TEST(AnalysisManager, LivenessFollowsVregGrowth)
{
    Function fn = makeLoop();
    AnalysisManager am(fn, true);
    uint32_t before = am.liveness().universe();

    // Grow the register universe past the padded headroom and use the
    // new registers so they show up in liveness.
    Vreg fresh = fn.newVreg();
    while (fn.numVregs() <= before)
        fresh = fn.newVreg();
    BasicBlock *entry = fn.block(fn.entry());
    entry->insts.insert(
        entry->insts.begin(),
        Instruction::unary(Opcode::Mov, fresh, Operand::makeImm(7)));
    BasicBlock *exit = fn.block(3);
    exit->insts.insert(
        exit->insts.begin(),
        Instruction::unary(Opcode::Mov, fn.newVreg(),
                           Operand::makeReg(fresh)));
    am.instructionsRewritten(fn.entry());
    am.instructionsRewritten(3);

    const Liveness &live = am.liveness();
    EXPECT_GE(live.universe(), fn.numVregs());
    EXPECT_TRUE(live.liveIn(3).test(fresh));
    expectLivenessMatchesFresh(am, fn);
}

TEST(AnalysisManager, FormationStressMatchesFresh)
{
    // End-to-end: run whole-function formation with the cache on, then
    // verify the surviving cache state against fresh analyses.
    Program p = compileTinyC(R"(
int main() {
  int acc = 0;
  for (int i = 0; i < 12; i += 1) {
    int t = i * 3;
    if ((t & 1) == 1) { acc += t; } else { acc -= i; }
    int j = 0;
    while (j < 4) { acc += j & t; j += 1; }
  }
  return acc;
}
)");
    Function &fn = p.fn;
    MergeOptions mo;
    mo.useAnalysisCache = true;
    MergeEngine engine(fn, mo);
    BreadthFirstPolicy policy;
    for (BlockId seed : fn.reversePostOrder()) {
        if (fn.block(seed))
            expandBlock(engine, policy, seed);
    }
    expectCfgAnalysesMatchFresh(engine.analyses(), fn);
    expectLivenessMatchesFresh(engine.analyses(), fn);
}

} // namespace
} // namespace chf
