#include "pipeline/session.h"

#include <chrono>
#include <exception>
#include <thread>
#include <type_traits>

#include "analysis/analysis_manager.h"
#include "frontend/parser.h"
#include "hyperblock/merge.h"
#include "support/cancellation.h"
#include "support/fatal.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace chf {

namespace {

/**
 * One worker's output slot. Workers only ever touch their own slot, so
 * the join can merge slots in unit order and produce the same bytes at
 * any thread count.
 */
struct UnitSlot
{
    CompileResult result;
    DiagnosticEngine diags;
    std::exception_ptr error;
    int attempts = 1;
};

/** Deep copy of a unit's pre-compilation state for bounded retry. */
Program
snapshotProgram(const Program &program)
{
    Program copy;
    copy.fn = program.fn.clone();
    copy.memory = program.memory;
    copy.defaultArgs = program.defaultArgs;
    return copy;
}

} // namespace

// The parallel driver relies on analysis state being per-function and
// per-worker (see analysis_manager.h "Concurrency contract"): a
// worker's cached snapshots must not be copyable into another worker.
static_assert(!std::is_copy_constructible_v<AnalysisManager> &&
                  !std::is_copy_assignable_v<AnalysisManager>,
              "AnalysisManager must stay non-copyable: Session workers "
              "each own their analyses and share no mutable state");

SessionOptions &
SessionOptions::withTarget(const TargetModel &model)
{
    std::string problem = model.validate();
    if (!problem.empty())
        fatal(concat("invalid target model '", model.name, "': ", problem));
    target = model;
    return *this;
}

SessionOptions &
SessionOptions::withTarget(const std::string &name)
{
    const TargetModel *model = findTarget(name);
    if (!model) {
        fatal(concat("unknown target '", name, "' (known targets: ",
                     targetNamesJoined(), ")"));
    }
    target = *model;
    return *this;
}

bool
SessionResult::degraded() const
{
    return degradedCount() > 0;
}

size_t
SessionResult::degradedCount() const
{
    size_t n = 0;
    for (const FunctionResult &fr : functions)
        n += fr.degraded() ? 1 : 0;
    return n;
}

std::vector<std::string>
SessionResult::failedPhases() const
{
    std::vector<std::string> out;
    for (const FunctionResult &fr : functions) {
        for (const std::string &phase : fr.failedPhases)
            out.push_back(fr.name.empty() ? phase
                                          : concat(fr.name, ":", phase));
    }
    return out;
}

size_t
Session::addProgram(Program program, ProfileData profile, std::string name,
                    std::optional<SessionOptions> unit_options)
{
    Unit unit;
    unit.ownedProgram = std::make_unique<Program>(std::move(program));
    unit.ownedProfile = std::make_unique<ProfileData>(std::move(profile));
    unit.name = name.empty() ? unit.ownedProgram->fn.name()
                             : std::move(name);
    unit.overrides = std::move(unit_options);
    units.push_back(std::move(unit));
    return units.size() - 1;
}

size_t
Session::addProgramRef(Program &program, const ProfileData &profile,
                       std::string name,
                       std::optional<SessionOptions> unit_options)
{
    Unit unit;
    unit.externalProgram = &program;
    unit.externalProfile = &profile;
    unit.name = name.empty() ? program.fn.name() : std::move(name);
    unit.overrides = std::move(unit_options);
    units.push_back(std::move(unit));
    return units.size() - 1;
}

size_t
Session::addSource(const std::string &source, std::string name,
                   const std::vector<int64_t> &profile_args)
{
    Program program = frontend(source);
    if (!profile_args.empty())
        program.defaultArgs = profile_args;
    ProfileData profile = prepareProgram(program, profile_args);
    return addProgram(std::move(program), std::move(profile),
                      std::move(name));
}

Program &
Session::program(size_t unit)
{
    CHF_ASSERT(unit < units.size(), "session unit index out of range");
    return units[unit].prog();
}

const Program &
Session::program(size_t unit) const
{
    CHF_ASSERT(unit < units.size(), "session unit index out of range");
    return units[unit].prog();
}

const std::string &
Session::unitName(size_t unit) const
{
    CHF_ASSERT(unit < units.size(), "session unit index out of range");
    return units[unit].name;
}

SessionResult
Session::compile()
{
    return compile(opts.threads);
}

SessionResult
Session::compile(int threads)
{
    Timer wall;
    if (opts.faultSpec)
        FaultInjector::instance().arm(*opts.faultSpec);

    const TrialMemoStats memo_before = trialMemoStats();
    const size_t n = units.size();
    std::vector<UnitSlot> slots(n);

    // Deadline governance (DESIGN.md §12): the watchdog thread exists
    // only when some unit can actually time out — otherwise tokens stay
    // null and the pipeline runs its historical code verbatim.
    const bool deadlines_on = deadlinesEnabled();
    bool need_watchdog =
        deadlines_on && (opts.deadlineMs > 0 || opts.unitTimeoutMs > 0);
    if (deadlines_on) {
        for (const Unit &u : units)
            if (u.overrides && u.overrides->unitTimeoutMs > 0)
                need_watchdog = true;
    }
    std::unique_ptr<DeadlineWatchdog> watchdog;
    std::optional<DeadlineWatchdog::Clock::time_point> session_deadline;
    if (need_watchdog) {
        watchdog = std::make_unique<DeadlineWatchdog>();
        if (opts.deadlineMs > 0)
            session_deadline =
                DeadlineWatchdog::Clock::now() +
                std::chrono::milliseconds(opts.deadlineMs);
    }

    // The per-unit pipeline. Every mutable object in here is either
    // unit-local (program, analyses, checkpoints, the diagnostic
    // engine) or mutex-protected (the FaultInjector), so units can run
    // on any thread; FaultUnitScope keys fault matching to the unit
    // index so injection is schedule-independent too.
    auto run_unit = [&](size_t i) {
        UnitSlot &slot = slots[i];
        const Unit &unit = units[i];
        const SessionOptions &conf =
            unit.overrides ? *unit.overrides : opts;

        CompileOptions co;
        co.pipeline = conf.pipeline;
        co.policy = conf.policy;
        co.target = conf.target;
        co.runBackend = conf.runBackend;
        co.blockSplitting = conf.blockSplitting;
        co.parallelTrials = conf.parallelTrials;
        co.useTrialCache = conf.useTrialCache;
        co.useIncrementalOpt = conf.useIncrementalOpt;
        co.verifyStages = conf.verifyStages;
        co.keepGoing = conf.keepGoing;
        co.diags = conf.keepGoing ? &slot.diags : nullptr;

        const int max_retries =
            retryEnabled() ? conf.retryAttempts : 0;

        // Compilation mutates the program in place, so retry needs the
        // pre-attempt state back. Snapshot once, restore per retry.
        std::optional<Program> snapshot;
        if (max_retries > 0)
            snapshot = snapshotProgram(unit.prog());

        FaultUnitScope fault_scope(static_cast<int>(i));
        for (int attempt = 0;; ++attempt) {
            if (attempt > 0) {
                unit.prog().fn = snapshot->fn.clone();
                unit.prog().memory = snapshot->memory;
                unit.prog().defaultArgs = snapshot->defaultArgs;
                slot.result = CompileResult();
                if (conf.retryBackoffMs > 0)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(conf.retryBackoffMs));
            }
            slot.attempts = attempt + 1;

            // Per-attempt cancellation: a fresh source, watched for
            // the session deadline and/or this attempt's time budget.
            CancellationSource source;
            co.cancel = CancellationToken();
            std::vector<uint64_t> watches;
            if (watchdog) {
                if (session_deadline)
                    watches.push_back(watchdog->watch(
                        source, *session_deadline,
                        CancelKind::Deadline));
                if (conf.unitTimeoutMs > 0)
                    watches.push_back(watchdog->watch(
                        source,
                        DeadlineWatchdog::Clock::now() +
                            std::chrono::milliseconds(
                                conf.unitTimeoutMs),
                        CancelKind::Timeout));
                co.cancel = source.token();
            }

            CancellationScope cancel_scope(co.cancel);
            FaultAttemptScope attempt_scope(attempt);
            bool cancelled = false;
            try {
                slot.result =
                    detail::compileUnit(unit.prog(), unit.prof(), co);
            } catch (const CancelledError &e) {
                // Deterministic surface: one fixed diagnostic, the
                // cancel kind recorded as the unit's failed phase.
                slot.diags.report(e.diagnostic());
                slot.result.failedPhases.push_back(
                    cancelKindName(e.kind()));
                cancelled = true;
            } catch (...) {
                slot.error = std::current_exception();
            }
            for (uint64_t id : watches)
                watchdog->unwatch(id);

            // Cancelled attempts and hard errors are terminal; only a
            // degraded (rolled-back) attempt earns a retry.
            if (slot.error || cancelled)
                break;
            if (!slot.result.degraded() || attempt >= max_retries)
                break;
        }
    };

    if (threads <= 1) {
        // Sequential: the exact code path compileProgram has always
        // taken, unit after unit on the calling thread.
        for (size_t i = 0; i < n; ++i)
            run_unit(i);
    } else {
        // Even a single unit gets a pool when threads > 1: the unit's
        // formation discovers it via WorkStealingPool::current() and
        // runs speculative parallel trial rounds (DESIGN.md §11).
        ThreadPool pool(static_cast<size_t>(threads));
        for (size_t i = 0; i < n; ++i)
            pool.submit([&run_unit, i] { run_unit(i); });
        pool.waitIdle();
    }

    // Deterministic join: everything is merged in unit order, never in
    // completion order.
    SessionResult out;
    out.functions.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        UnitSlot &slot = slots[i];
        if (slot.error)
            std::rethrow_exception(slot.error);

        FunctionResult fr;
        fr.name = units[i].name;
        fr.blocks = units[i].prog().fn.numBlocks();
        fr.insts = units[i].prog().fn.totalInsts();
        fr.stats = std::move(slot.result.stats);
        fr.failedPhases = std::move(slot.result.failedPhases);
        fr.attempts = slot.attempts;

        out.totals.merge(fr.stats);
        out.diagnostics.append(slot.diags, static_cast<int>(i));
        out.functions.push_back(std::move(fr));
    }
    out.diagnostics.sortStable();

    out.totals.set("unitsCompiled", static_cast<int64_t>(n));
    out.totals.set("unitsDegraded",
                   static_cast<int64_t>(out.degradedCount()));
    int64_t retried = 0;
    for (const FunctionResult &fr : out.functions)
        retried += fr.attempts > 1 ? 1 : 0;
    out.totals.set("unitsRetried", retried);
    out.totals.set("usSessionWall", wall.elapsedMicros());

    // Trial-memo store activity attributable to this compile: the
    // store is process-wide, so hits/misses/evictions are reported as
    // deltas; entries/occupancy are point-in-time absolutes.
    const TrialMemoStats memo_after = trialMemoStats();
    out.totals.set("trialMemoStoreHits",
                   static_cast<int64_t>(memo_after.hits -
                                        memo_before.hits));
    out.totals.set("trialMemoStoreMisses",
                   static_cast<int64_t>(memo_after.misses -
                                        memo_before.misses));
    out.totals.set("trialMemoStoreEvictions",
                   static_cast<int64_t>(memo_after.evictions -
                                        memo_before.evictions));
    out.totals.set("trialMemoStoreEntries",
                   static_cast<int64_t>(memo_after.entries));
    out.totals.set("trialMemoStoreMaxShard",
                   static_cast<int64_t>(memo_after.maxShardEntries));
    return out;
}

Program
Session::frontend(const std::string &source, const std::string &entry_name,
                  const LoweringOptions &options)
{
    // API-boundary handler: tools that have not opted into diagnostic
    // collection keep the historical fatal-and-exit(1) behavior.
    try {
        TranslationUnit unit = parseTinyC(source);
        return lowerToIR(unit, entry_name, options);
    } catch (const RecoverableError &e) {
        fatal(e.what());
    }
}

std::optional<Program>
Session::frontend(const std::string &source, DiagnosticEngine &diags,
                  const std::string &entry_name,
                  const LoweringOptions &options)
{
    try {
        TranslationUnit unit = parseTinyC(source);
        return lowerToIR(unit, entry_name, options);
    } catch (const RecoverableError &e) {
        diags.report(e.diagnostic());
        return std::nullopt;
    }
}

// Definition of the deprecated free-function entry point: a single
// borrowed unit compiled by a single-threaded Session, i.e. exactly
// the historical code path, with the merged diagnostics copied back
// into the caller's engine.
CompileResult
compileProgram(Program &program, const ProfileData &profile,
               const CompileOptions &options)
{
    SessionOptions conf = SessionOptions()
                              .withPipeline(options.pipeline)
                              .withPolicy(options.policy)
                              .withTarget(options.target)
                              .withBackend(options.runBackend)
                              .withBlockSplitting(options.blockSplitting)
                              .withParallelTrials(options.parallelTrials)
                              .withTrialCache(options.useTrialCache)
                              .withIncrementalOpt(options.useIncrementalOpt)
                              .withVerifyStages(options.verifyStages)
                              .withKeepGoing(options.keepGoing &&
                                             options.diags != nullptr);
    Session session(conf);
    session.addProgramRef(program, profile);
    SessionResult merged = session.compile(1);

    CompileResult out;
    out.stats = std::move(merged.functions[0].stats);
    out.failedPhases = std::move(merged.functions[0].failedPhases);
    if (options.diags != nullptr)
        options.diags->append(merged.diagnostics);
    return out;
}

} // namespace chf
