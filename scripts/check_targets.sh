#!/bin/sh
# Memory-safety gate for the target-model subsystem: build with
# AddressSanitizer (CHF_SANITIZE=address instruments the whole library)
# and run every ctest labeled "target" — the target-determinism matrix
# over the registry (every model × thread count × trial-cache setting
# byte-identical, DESIGN.md §13), the TargetModel unit/legality tests,
# and the AutoTuner determinism and Pareto tests. Test timeouts come
# from chf_test_budget(), which picks the sanitized ceiling under
# CHF_SANITIZE builds.
#
# Usage: scripts/check_targets.sh [build-dir]   (default: build-asan)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCHF_SANITIZE=address
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 4)"

# halt_on_error: the first report fails the gate immediately instead of
# scrolling past in a long test log.
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$BUILD_DIR" -L target --output-on-failure
echo "check_targets: ctest -L target clean under AddressSanitizer"
