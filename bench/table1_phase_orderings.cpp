/**
 * @file
 * Reproduces Table 1: percent improvement in cycle counts of
 * hyperblocks over basic blocks (BB), with the static count of blocks
 * merged / tail-duplicated / unrolled / peeled (m/t/u/p), for the
 * phase orderings UPIO, IUPO, (IUP)O, and (IUPO). All configurations
 * use the greedy breadth-first policy with incremental if-conversion,
 * as in the paper.
 */

#include <cstdio>
#include <vector>

#include "../bench/harness.h"
#include "support/table.h"

using namespace chf;
using namespace chf::bench;

int
main()
{
    struct Config
    {
        const char *label;
        Pipeline pipeline;
    };
    const std::vector<Config> configs = {
        {"UPIO", Pipeline::UPIO},
        {"IUPO", Pipeline::IUPO},
        {"(IUP)O", Pipeline::IUP_O},
        {"(IUPO)", Pipeline::IUPO_fused},
    };

    TextTable table;
    table.setHeader({"benchmark", "BB cycles", "UPIO m/t/u/p", "%",
                     "IUPO m/t/u/p", "%", "(IUP)O m/t/u/p", "%",
                     "(IUPO) m/t/u/p", "%"});

    std::vector<double> sums(configs.size(), 0.0);
    size_t count = 0;

    // Figure 7 feed: (block count reduction, cycle count reduction).
    std::printf("# table1: cycle-count improvement over BB by phase "
                "ordering (breadth-first policy)\n");

    for (const auto &workload : microbenchmarks()) {
        Program base = buildWorkload(workload);
        ProfileData profile = prepareProgram(base);

        CompileOptions bb_options;
        bb_options.pipeline = Pipeline::BB;
        FuncSimResult oracle = runFunctional(base);
        ConfigResult bb =
            measure(base, profile, bb_options, oracle.returnValue,
                    oracle.memoryHash);

        std::vector<std::string> row;
        row.push_back(workload.name);
        row.push_back(std::to_string(bb.timing.cycles));

        for (size_t c = 0; c < configs.size(); ++c) {
            CompileOptions options;
            options.pipeline = configs[c].pipeline;
            ConfigResult run =
                measure(base, profile, options, oracle.returnValue,
                        oracle.memoryHash);
            double pct =
                improvementPct(bb.timing.cycles, run.timing.cycles);
            sums[c] += pct;
            row.push_back(mtup(run.stats));
            row.push_back(TextTable::pct(pct));
        }
        table.addRow(row);
        ++count;
    }

    table.addSeparator();
    std::vector<std::string> avg = {"Average", ""};
    for (size_t c = 0; c < configs.size(); ++c) {
        avg.push_back("");
        avg.push_back(TextTable::pct(sums[c] / count));
    }
    table.addRow(avg);

    std::printf("%s", table.render().c_str());

    double best_static = std::max(sums[0], sums[1]) / count;
    double convergent = sums[3] / count;
    std::printf("\nheadline: best static ordering avg %+.1f%%, "
                "convergent (IUPO) avg %+.1f%%, delta %+.1f points "
                "(paper: convergent beats static orderings by 2-11%% "
                "avg)\n",
                best_static, convergent, convergent - best_static);
    return 0;
}
