/**
 * @file
 * The compiler pipelines compared in the paper's evaluation.
 *
 * Naming follows Table 1: U = (while-)loop unrolling, P = peeling,
 * I = incremental if-conversion (hyperblock formation under the TRIPS
 * constraints), O = scalar optimizations. Parentheses mean the phases
 * are merged into the convergent algorithm:
 *
 *  - BB:      basic blocks as TRIPS blocks (baseline).
 *  - UPIO:    CFG-level unroll/peel first (sizes estimated on
 *             unpredicated code), then formation without head
 *             duplication, then one scalar-optimization pass.
 *  - IUPO:    formation first, then discrete unroll/peel driven by the
 *             now-accurate hyperblock sizes, then optimization.
 *  - (IUP)O:  fully convergent formation with head duplication, scalar
 *             optimizations once at the end.
 *  - (IUPO):  fully convergent with optimization inside the merge loop.
 *
 * All pipelines assume the front end already ran (inlining, for-loop
 * unrolling, CFG simplification, scalar optimization, profiling); use
 * prepareProgram() for that.
 */

#ifndef CHF_HYPERBLOCK_PHASE_ORDERING_H
#define CHF_HYPERBLOCK_PHASE_ORDERING_H

#include <string>
#include <vector>

#include "analysis/profile.h"
#include "hyperblock/convergent.h"
#include "ir/program.h"
#include "support/cancellation.h"
#include "support/diagnostics.h"

namespace chf {

/** Hyperblock-formation pipeline selector. */
enum class Pipeline
{
    BB,
    UPIO,
    IUPO,
    IUP_O,      ///< (IUP)O
    IUPO_fused, ///< (IUPO)
};

const char *pipelineName(Pipeline pipeline);

/** Block-selection heuristic selector (Table 2). */
enum class PolicyKind
{
    BreadthFirst,
    DepthFirst,
    Vliw,           ///< path-based, scalar opts once at the end
    VliwConvergent, ///< path-based with iterative optimization
};

const char *policyKindName(PolicyKind kind);

/** Full compilation configuration. */
struct CompileOptions
{
    Pipeline pipeline = Pipeline::IUPO_fused;
    PolicyKind policy = PolicyKind::BreadthFirst;

    /** Target description (target/target_model.h): block format, LSQ
     *  and bank geometry, register file, spill-headroom policy. The
     *  default is the TRIPS reference model. */
    TargetModel target;

    /** Run output normalization, register allocation, and fanout. */
    bool runBackend = true;

    /** Enable basic-block splitting during formation (paper §9). */
    bool blockSplitting = false;

    /** Speculative parallel trial merges when compiled on a worker of
     *  a multi-threaded Session (bit-identical; DESIGN.md §11). */
    bool parallelTrials = true;

    /** Trial-merge fast path (scratch reuse + failed-trial memo +
     *  pre-screen; DESIGN.md §10). Off forces the slow path, which
     *  must stay bit-identical — the fuzz harness compares both. Also
     *  globally switchable off with CHF_TRIAL_CACHE=0. */
    bool useTrialCache = true;

    /** Seam-scoped incremental trial optimization (DESIGN.md §14).
     *  Bit-identical to the full per-trial pass; off (or CHF_INCR_OPT=0)
     *  forces the full pass for differential runs. */
    bool useIncrementalOpt = true;

    /** Verify semantics-preservation hooks (IR verifier) per stage. */
    bool verifyStages = true;

    /**
     * Transactional mode: run each destructive phase (unroll, peel,
     * formation, regalloc, fanout, schedule) under a checkpoint/verify
     * guard. A phase that throws RecoverableError or fails the
     * verifier is rolled back bit-identically and recorded in @p
     * diags, and compilation continues with the degraded pipeline.
     * Off by default: the strict pipeline takes the exact code paths
     * it always has (no snapshots, verifyOrDie aborts).
     */
    bool keepGoing = false;

    /** Failure sink for keepGoing mode; required when keepGoing. */
    DiagnosticEngine *diags = nullptr;

    /**
     * Cooperative cancellation token (DESIGN.md §12), polled at every
     * phase boundary and threaded into formation's merge-round loop.
     * When it trips, compileUnit aborts with CancelledError — the
     * Session turns that into a timeout/deadline/cancelled diagnostic
     * and marks the unit degraded. The default null token never
     * cancels; Session only binds a real one when a deadline or unit
     * timeout is configured (and CHF_DEADLINE is not 0).
     */
    CancellationToken cancel;
};

/**
 * Outcome counters: the m/t/u/p statistics plus backend numbers.
 *
 * Legacy result shape of the deprecated compileProgram() entry point.
 * New code should use chf::Session (pipeline/session.h), whose
 * SessionResult aggregates one FunctionResult per compilation unit
 * instead of mixing per-program and per-function data here.
 */
struct CompileResult
{
    StatSet stats;

    /** Phases rolled back in keepGoing mode (empty on a clean run). */
    std::vector<std::string> failedPhases;

    bool degraded() const { return !failedPhases.empty(); }
};

/**
 * Front-end preparation shared by every pipeline: CFG simplification,
 * scalar optimization, profiling, for-loop unrolling (using the
 * profile, like Scale's use of prior compilations), re-simplification
 * and re-profiling. Leaves @p program in the "BB" baseline state and
 * returns the profile.
 *
 * With @p diags and @p keep_going set, the for-loop unroll runs as a
 * guarded "unroll" transaction: on failure it is rolled back and
 * recorded, and the unprepared-but-correct CFG proceeds.
 */
ProfileData prepareProgram(Program &program,
                           const std::vector<int64_t> &args = {},
                           bool for_loop_unroll = true,
                           DiagnosticEngine *diags = nullptr,
                           bool keep_going = false);

namespace detail {

/**
 * The guarded phase pipeline for one compilation unit (formation →
 * regalloc → fanout → schedule), exactly as compileProgram has always
 * run it. Session workers call this once per unit; it touches nothing
 * but @p program, @p options.diags, and the process-wide FaultInjector
 * (which is mutex-protected), so concurrent calls on distinct programs
 * are safe.
 */
CompileResult compileUnit(Program &program, const ProfileData &profile,
                          const CompileOptions &options);

} // namespace detail

/**
 * Apply a pipeline to a prepared, profiled program in place.
 *
 * @deprecated Use chf::Session (pipeline/session.h): construct a
 * Session over the program and call compile(). This wrapper builds a
 * single-unit, single-threaded Session, which takes the identical code
 * path, and copies the merged diagnostics back into @p options.diags.
 */
[[deprecated("use chf::Session::compile() (see docs/api.md)")]]
CompileResult compileProgram(Program &program, const ProfileData &profile,
                             const CompileOptions &options);

} // namespace chf

#endif // CHF_HYPERBLOCK_PHASE_ORDERING_H
