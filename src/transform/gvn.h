/**
 * @file
 * Value numbering with constant folding, algebraic simplification, and
 * redundant-load elimination.
 *
 * The paper's Optimize step applies "dominator-based global value
 * numbering" to the merged block. Because convergent formation merges
 * whole blocks, the scope that matters is the single merged hyperblock,
 * so this pass implements predicate-aware local value numbering over a
 * block. A function-wide driver applies it to every block.
 *
 * Predicate awareness: two instructions are redundant only if their
 * opcode, operand value numbers, and predicate (register value number
 * plus polarity) all match; the later one is rewritten to a predicated
 * move from the earlier destination. A predicated write always gives
 * its destination a fresh value number, since the old value may flow
 * through.
 */

#ifndef CHF_TRANSFORM_GVN_H
#define CHF_TRANSFORM_GVN_H

#include <vector>

#include "ir/function.h"

namespace chf {

/**
 * Reusable register->value-number table for valueNumberBlock: the one
 * per-vreg map on the pass's hot path, densified and epoch-stamped so
 * a new block starts with an O(1) reset and the vectors keep their
 * capacity across merge trials.
 */
struct GvnScratch
{
    std::vector<uint32_t> regVN;
    std::vector<uint32_t> regStamp; ///< valid iff regStamp[v] == epoch
    uint32_t epoch = 0;
};

/**
 * Value-number @p bb in place.
 * @return number of instructions simplified (folded, strength-reduced,
 *         or rewritten to moves).
 */
size_t valueNumberBlock(Function &fn, BasicBlock &bb,
                        GvnScratch *scratch = nullptr);

/** Apply valueNumberBlock to every block. @return total simplified. */
size_t valueNumberFunction(Function &fn);

/**
 * Dominator-based global value numbering (the pass the paper's
 * Optimize step names). Scoped expression tables are pushed down the
 * dominator tree; to stay sound without SSA, only expressions whose
 * destination and register operands are single-assignment in the whole
 * function participate -- exactly the subset whose values are
 * path-independent wherever they are visible. A redundant computation
 * in a dominated block becomes a move from the dominating holder.
 * @return number of instructions rewritten.
 */
size_t valueNumberFunctionDominator(Function &fn);

} // namespace chf

#endif // CHF_TRANSFORM_GVN_H
