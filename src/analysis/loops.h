/**
 * @file
 * Natural-loop analysis on top of the dominator tree.
 *
 * Head duplication needs to answer two questions about a candidate merge
 * (paper Fig. 5): is HB -> S a back edge, and is S a loop header. Loops
 * are identified as natural loops of back edges (target dominates
 * source); back edges sharing a header are merged into one loop.
 */

#ifndef CHF_ANALYSIS_LOOPS_H
#define CHF_ANALYSIS_LOOPS_H

#include <memory>
#include <vector>

#include "analysis/dominators.h"
#include "ir/function.h"

namespace chf {

/** One natural loop. */
struct Loop
{
    BlockId header = kNoBlock;

    /** Member block ids (header included). */
    std::vector<BlockId> blocks;

    /** Source blocks of back edges into the header. */
    std::vector<BlockId> latches;

    /** Nesting depth: 1 for outermost. */
    int depth = 1;

    bool
    contains(BlockId id) const
    {
        for (BlockId b : blocks) {
            if (b == id)
                return true;
        }
        return false;
    }
};

/** All natural loops of a function. */
class LoopInfo
{
  public:
    explicit LoopInfo(const Function &fn);

    /**
     * Build on top of an existing dominator tree and predecessor map
     * (typically the AnalysisManager's cached copies) instead of
     * recomputing both. @p dom and @p preds must describe the current
     * CFG, and @p dom must outlive this LoopInfo.
     */
    LoopInfo(const Function &fn, const DominatorTree &dom,
             const PredecessorMap &preds);

    /**
     * Patch for a committed simple merge (see
     * DominatorTree::applyBlockAbsorbed): @p s was spliced out of every
     * CFG walk, so the loops are the same loops minus @p s, with @p hb
     * taking over any back edge @p s carried. Call after patching the
     * borrowed dominator tree.
     */
    void applyBlockAbsorbed(BlockId hb, BlockId s);

    /** True if @p from -> @p to is a back edge (to dominates from). */
    bool isBackEdge(BlockId from, BlockId to) const;

    /** True if some back edge targets @p id. */
    bool isLoopHeader(BlockId id) const;

    /** The loop headed by @p header; nullptr if none. */
    const Loop *loopAt(BlockId header) const;

    /** Innermost loop containing @p id; nullptr if not in any loop. */
    const Loop *innermostContaining(BlockId id) const;

    /** Nesting depth of @p id (0 if in no loop). */
    int depth(BlockId id) const;

    const std::vector<Loop> &loops() const { return allLoops; }

    const DominatorTree &dominators() const { return *domTree; }

  private:
    void build(const Function &fn, const PredecessorMap &preds);

    std::unique_ptr<DominatorTree> ownedDom; // set by the fn-only ctor
    const DominatorTree *domTree;
    std::vector<Loop> allLoops;
    std::vector<int> blockDepth; // by block id
};

} // namespace chf

#endif // CHF_ANALYSIS_LOOPS_H
