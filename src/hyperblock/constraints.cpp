#include "hyperblock/constraints.h"

#include <algorithm>
#include <map>

#include "analysis/liveness.h"
#include "support/fatal.h"
#include "transform/normalize_outputs.h"

namespace chf {

BlockResources
analyzeBlock(const Function &fn, const BasicBlock &bb,
             const BitVector &live_out, const TargetModel &target,
             BlockAnalysisScratch *scratch)
{
    BlockAnalysisScratch local;
    BlockAnalysisScratch &t = scratch ? *scratch : local;

    BlockResources res;
    res.insts = bb.size();
    res.memOps = bb.memoryOpCount();

    // The caller's live_out may be sized to a (padded) liveness
    // universe larger than the function's register count; follow it so
    // the set algebra below stays size-consistent.
    uint32_t nv = std::max(fn.numVregs(),
                           static_cast<uint32_t>(live_out.size()));

    // Bank geometry flows explicitly from the target model: the
    // pre-allocation proxy assigns vreg v to bank (v mod banks), so
    // changing the geometry changes the per-bank estimates (a 2-bank
    // model concentrates reads that a 4-bank model spreads).
    const size_t banks = target.effectiveBanks();

    // Distinct upward-exposed reads (register file reads).
    blockUsesInto(bb, nv, t.uses, t.killed);
    res.regReads = t.uses.count();
    t.uses.forEach([&](uint32_t v) { res.bankReads[v % banks]++; });

    // Distinct written live-out registers (register file writes).
    blockDefsInto(bb, nv, t.defs);
    t.defs.intersectWith(live_out);
    res.regWrites = t.defs.count();
    t.defs.forEach([&](uint32_t v) { res.bankWrites[v % banks]++; });

    // Fanout prediction: a producer can name two consumers; each extra
    // consumer costs one mov in the fanout tree (Fig. 6's fanout
    // insertion). Count in-block consumers per def until redefinition.
    // The same walk counts exit branches for the branch/output model.
    {
        std::map<Vreg, size_t> consumers;
        auto flush = [&](Vreg v) {
            auto it = consumers.find(v);
            if (it != consumers.end()) {
                if (it->second > 2)
                    res.fanoutMoves += it->second - 2;
                consumers.erase(it);
            }
        };
        for (const auto &inst : bb.insts) {
            if (inst.op == Opcode::Br)
                res.branches++;
            inst.forEachUse([&](Vreg v) { consumers[v] += 1; });
            if (inst.hasDest()) {
                flush(inst.dest);
                consumers[inst.dest] = 0;
            }
        }
        for (const auto &[v, count] : consumers) {
            if (count > 2)
                res.fanoutMoves += count - 2;
        }
    }

    // Null-write prediction: the pass's own count-only walk, so the
    // estimate cannot drift from the pass (and no block copy or
    // throwaway register counter is built per trial).
    res.nullWrites = predictNullWrites(bb, live_out);

    return res;
}

std::string
blockSizeReason(const TargetModel &target, size_t headroom)
{
    return concat("estimated insts + ", headroom,
                  " headroom exceed max ", target.maxInsts);
}

std::string
checkBlockLegal(const BlockResources &res, const TargetModel &target,
                size_t headroom, bool check_banks)
{
    if (res.estimatedInsts() + headroom > target.maxInsts)
        return blockSizeReason(target, headroom);
    if (res.memOps > target.effectiveMemOps()) {
        return concat(res.memOps, " memory ops exceed ",
                      target.effectiveMemOps());
    }
    // Branch/output model: 0 means exits are bounded only by the
    // instruction budget (the reference TRIPS model), so this check
    // never fires there and legacy output is untouched.
    if (target.maxBranches > 0 && res.branches > target.maxBranches) {
        return concat(res.branches, " exit branches exceed ",
                      target.maxBranches);
    }
    if (res.regReads > target.maxRegReads()) {
        return concat(res.regReads, " register reads exceed ",
                      target.maxRegReads());
    }
    if (res.regWrites > target.maxRegWrites()) {
        return concat(res.regWrites, " register writes exceed ",
                      target.maxRegWrites());
    }
    if (check_banks) {
        for (size_t b = 0; b < target.effectiveBanks(); ++b) {
            if (res.bankReads[b] > target.maxReadsPerBank) {
                return concat("bank ", b, " has ", res.bankReads[b],
                              " reads (max ", target.maxReadsPerBank,
                              ")");
            }
            if (res.bankWrites[b] > target.maxWritesPerBank) {
                return concat("bank ", b, " has ", res.bankWrites[b],
                              " writes (max ", target.maxWritesPerBank,
                              ")");
            }
        }
    }
    return "";
}

std::string
checkBlockLegal(const Function &fn, const BasicBlock &bb,
                const BitVector &live_out, const TargetModel &target,
                size_t headroom, BlockAnalysisScratch *scratch)
{
    return checkBlockLegal(analyzeBlock(fn, bb, live_out, target, scratch),
                           target, headroom);
}

} // namespace chf
