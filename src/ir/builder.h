/**
 * @file
 * Convenience builder for constructing IR by hand (tests, examples,
 * front-end lowering).
 */

#ifndef CHF_IR_BUILDER_H
#define CHF_IR_BUILDER_H

#include "ir/function.h"

namespace chf {

/**
 * Appends instructions to a current block of a function. All emit
 * helpers return the destination register where one exists.
 */
class IRBuilder
{
  public:
    explicit IRBuilder(Function &fn) : func(fn) {}

    Function &function() { return func; }

    /** Create a block and return its id (does not change insert point). */
    BlockId
    makeBlock(const std::string &name = "")
    {
        return func.newBlock(name)->id();
    }

    /** Set the block new instructions are appended to. */
    void setBlock(BlockId id) { current = id; }
    BlockId currentBlock() const { return current; }

    /** Append an arbitrary instruction. */
    void
    emit(const Instruction &inst)
    {
        blockRef()->append(inst);
    }

    // --- Operand shorthands ---
    static Operand r(Vreg v) { return Operand::makeReg(v); }
    static Operand imm(int64_t v) { return Operand::makeImm(v); }

    /** Materialize a constant into a fresh register. */
    Vreg
    constant(int64_t v)
    {
        Vreg d = func.newVreg();
        emit(Instruction::unary(Opcode::Mov, d, imm(v)));
        return d;
    }

    Vreg
    unary(Opcode op, Operand a)
    {
        Vreg d = func.newVreg();
        emit(Instruction::unary(op, d, a));
        return d;
    }

    Vreg
    binary(Opcode op, Operand a, Operand b)
    {
        Vreg d = func.newVreg();
        emit(Instruction::binary(op, d, a, b));
        return d;
    }

    Vreg add(Operand a, Operand b) { return binary(Opcode::Add, a, b); }
    Vreg sub(Operand a, Operand b) { return binary(Opcode::Sub, a, b); }
    Vreg mul(Operand a, Operand b) { return binary(Opcode::Mul, a, b); }

    Vreg
    load(Operand base, Operand offset)
    {
        Vreg d = func.newVreg();
        emit(Instruction::load(d, base, offset));
        return d;
    }

    void
    store(Operand base, Operand offset, Operand value)
    {
        emit(Instruction::store(base, offset, value));
    }

    /** Copy into an existing register (e.g. a loop-carried variable). */
    void
    movTo(Vreg dest, Operand src)
    {
        emit(Instruction::unary(Opcode::Mov, dest, src));
    }

    /** Unconditional branch. */
    void
    br(BlockId target, double freq = 0.0)
    {
        emit(Instruction::br(target, Predicate::always(), freq));
    }

    /**
     * Conditional branch: emits two branches predicated on @p cond, to
     * @p if_true when nonzero and @p if_false when zero.
     */
    void
    brCond(Vreg cond, BlockId if_true, BlockId if_false,
           double freq_true = 0.0, double freq_false = 0.0)
    {
        emit(Instruction::br(if_true, Predicate::onReg(cond, true),
                             freq_true));
        emit(Instruction::br(if_false, Predicate::onReg(cond, false),
                             freq_false));
    }

    void
    ret(Operand value = Operand::makeNone(), double freq = 0.0)
    {
        emit(Instruction::ret(value, Predicate::always(), freq));
    }

  private:
    BasicBlock *
    blockRef()
    {
        BasicBlock *bb = func.block(current);
        return bb;
    }

    Function &func;
    BlockId current = kNoBlock;
};

} // namespace chf

#endif // CHF_IR_BUILDER_H
