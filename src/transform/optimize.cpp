#include "transform/optimize.h"

#include <algorithm>

#include "analysis/liveness.h"
#include "support/timer.h"
#include "transform/copy_prop.h"
#include "transform/dce.h"
#include "transform/gvn.h"
#include "transform/pred_opt.h"

namespace chf {

size_t
optimizeBlock(Function &fn, BasicBlock &bb, const BitVector &live_out,
              BlockOptScratch *scratch)
{
    return optimizeBlockFrom(fn, bb, live_out, 0, scratch, nullptr,
                             nullptr);
}

size_t
optimizeBlockFrom(Function &fn, BasicBlock &bb,
                  const BitVector &live_out, size_t seam_begin,
                  BlockOptScratch *scratch, bool *fixpoint_out,
                  OptPassStats *stats)
{
    BlockOptScratch local;
    BlockOptScratch &t = scratch ? *scratch : local;
    size_t total = 0;
    size_t begin = std::min(seam_begin, bb.insts.size());
    bool fixpoint = false;
    // Two rounds: predicate merging exposes value-numbering hits and
    // vice versa; gains beyond two rounds are negligible.
    for (int round = 0; round < 2; ++round) {
        size_t changes = 0;
        size_t min_pred = bb.insts.size();
        size_t min_dce = bb.insts.size();
        size_t min_coalesce = bb.insts.size();
        if (stats) {
            stats->instsVisited += bb.insts.size() - begin;
            stats->instsTotal += bb.insts.size();
            Timer timer;
            int64_t last = 0;
            auto lap = [&](uint64_t &slot) {
                int64_t now = timer.elapsedMicros();
                slot += static_cast<uint64_t>(now - last);
                last = now;
            };
            changes += copyPropagateBlock(bb, &t.copyProp, begin);
            lap(stats->usCopyProp);
            changes += valueNumberBlock(fn, bb, &t.gvn, begin);
            lap(stats->usGvn);
            changes += optimizePredicates(bb, live_out, &t.predOpt,
                                          begin, &min_pred);
            lap(stats->usPredOpt);
            changes += eliminateDeadCode(bb, live_out, &t.dce,
                                         &min_dce);
            lap(stats->usDce);
            changes += coalesceMoves(bb, live_out, &t.coalesce,
                                     &min_coalesce);
            lap(stats->usCoalesce);
        } else {
            changes += copyPropagateBlock(bb, &t.copyProp, begin);
            changes += valueNumberBlock(fn, bb, &t.gvn, begin);
            changes += optimizePredicates(bb, live_out, &t.predOpt,
                                          begin, &min_pred);
            changes += eliminateDeadCode(bb, live_out, &t.dce,
                                         &min_dce);
            changes += coalesceMoves(bb, live_out, &t.coalesce,
                                     &min_coalesce);
        }
        total += changes;
        if (changes == 0) {
            fixpoint = true;
            break;
        }
        // The copy-prop/GVN rewrites only touch [begin, n); the
        // position-reporting passes may have modified or shifted
        // instructions below it, so the next round's prefix shrinks to
        // the lowest touched position.
        begin = std::min(std::min(begin, min_pred),
                         std::min(min_dce, min_coalesce));
    }
    if (fixpoint_out)
        *fixpoint_out = fixpoint;
    return total;
}

size_t
optimizeFunction(Function &fn)
{
    size_t total = 0;
    for (int round = 0; round < 3; ++round) {
        size_t changes = 0;
        changes += copyPropagateFunction(fn);
        changes += valueNumberFunction(fn);
        changes += valueNumberFunctionDominator(fn);
        changes += optimizePredicatesFunction(fn);
        changes += eliminateDeadCodeFunction(fn);
        changes += coalesceMovesFunction(fn);
        total += changes;
        if (changes == 0)
            break;
    }
    return total;
}

} // namespace chf
