#include "ir/function.h"

#include <algorithm>

#include "support/fatal.h"

namespace chf {

BasicBlock *
Function::newBlock(const std::string &name)
{
    BlockId id = static_cast<BlockId>(blocks.size());
    std::string block_name =
        name.empty() ? ("bb" + std::to_string(id)) : name;
    blocks.push_back(std::make_unique<BasicBlock>(id, block_name));
    return blocks.back().get();
}

BasicBlock *
Function::block(BlockId id)
{
    CHF_ASSERT(id < blocks.size(), "block id out of range");
    return blocks[id].get();
}

const BasicBlock *
Function::block(BlockId id) const
{
    CHF_ASSERT(id < blocks.size(), "block id out of range");
    return blocks[id].get();
}

void
Function::removeBlock(BlockId id)
{
    CHF_ASSERT(id < blocks.size(), "block id out of range");
    CHF_ASSERT(id != entryBlock, "cannot remove entry block");
    blocks[id].reset();
}

void
Function::replaceBlockContents(BlockId id, const BasicBlock &src)
{
    BasicBlock *bb = block(id);
    CHF_ASSERT(bb, "replaceBlockContents on removed block");
    bb->insts = src.insts;
}

std::vector<BlockId>
Function::blockIds() const
{
    std::vector<BlockId> out;
    for (size_t i = 0; i < blocks.size(); ++i) {
        if (blocks[i])
            out.push_back(static_cast<BlockId>(i));
    }
    return out;
}

size_t
Function::numBlocks() const
{
    size_t n = 0;
    for (const auto &bb : blocks) {
        if (bb)
            ++n;
    }
    return n;
}

PredecessorMap
Function::predecessors() const
{
    PredecessorMap preds(blocks.size());
    for (const auto &bb : blocks) {
        if (!bb)
            continue;
        for (BlockId succ : bb->successors()) {
            auto &list = preds[succ];
            if (std::find(list.begin(), list.end(), bb->id()) == list.end())
                list.push_back(bb->id());
        }
    }
    return preds;
}

std::vector<BlockId>
Function::reversePostOrder() const
{
    std::vector<BlockId> post;
    std::vector<uint8_t> visited(blocks.size(), 0);
    // Iterative DFS with an explicit stack of (block, next-inst-index).
    // Branch targets are scanned out of the instruction stream in
    // place; revisits of a duplicate target are skipped by the visited
    // bits, so the traversal (and thus the order) matches what a
    // deduplicated successor list would produce -- without
    // materializing one per block. This runs once per incremental
    // liveness update, i.e. once per committed merge, so it must not
    // allocate per block.
    std::vector<std::pair<BlockId, size_t>> stack;
    if (entryBlock == kNoBlock)
        return post;
    stack.emplace_back(entryBlock, 0);
    visited[entryBlock] = 1;
    while (!stack.empty()) {
        auto &[id, next] = stack.back();
        const auto &insts = blocks[id]->insts;
        size_t i = next;
        while (i < insts.size() && insts[i].op != Opcode::Br)
            ++i;
        if (i < insts.size()) {
            BlockId s = insts[i].target;
            next = i + 1;
            if (s < blocks.size() && blocks[s] && !visited[s]) {
                visited[s] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            post.push_back(id);
            stack.pop_back();
        }
    }
    std::reverse(post.begin(), post.end());
    return post;
}

size_t
Function::removeUnreachable()
{
    std::vector<uint8_t> reachable(blocks.size(), 0);
    for (BlockId id : reversePostOrder())
        reachable[id] = 1;
    size_t removed = 0;
    for (size_t i = 0; i < blocks.size(); ++i) {
        if (blocks[i] && !reachable[i]) {
            blocks[i].reset();
            ++removed;
        }
    }
    return removed;
}

size_t
Function::totalInsts() const
{
    size_t n = 0;
    for (const auto &bb : blocks) {
        if (bb)
            n += bb->size();
    }
    return n;
}

Function
Function::clone() const
{
    Function copy(functionName);
    copy.entryBlock = entryBlock;
    copy.vregCount = vregCount;
    copy.argRegs = argRegs;
    copy.blocks.reserve(blocks.size());
    for (const auto &bb : blocks) {
        if (bb) {
            auto nb = std::make_unique<BasicBlock>(bb->id(), bb->name());
            nb->insts = bb->insts;
            copy.blocks.push_back(std::move(nb));
        } else {
            copy.blocks.push_back(nullptr);
        }
    }
    return copy;
}

} // namespace chf
