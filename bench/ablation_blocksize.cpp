/**
 * @file
 * Ablation: sensitivity to the architectural block-size constraint.
 * TRIPS chose 128 instructions per block; sweep 32/64/128/256 and
 * report average cycle improvement of (IUPO) over basic blocks, plus
 * average dynamic block counts. Larger blocks amortize more per-block
 * overhead but admit more useless speculative instructions.
 */

#include <cstdio>
#include <vector>

#include "../bench/harness.h"
#include "support/table.h"

using namespace chf;
using namespace chf::bench;

int
main()
{
    const std::vector<size_t> sizes = {32, 64, 128, 256};

    std::printf("# ablation: max block size sweep ((IUPO), "
                "breadth-first, microbenchmarks)\n");

    TextTable table;
    table.setHeader({"max insts", "avg % vs BB", "avg blocks vs BB"});

    for (size_t max_insts : sizes) {
        double sum_pct = 0.0;
        double sum_blockratio = 0.0;
        size_t count = 0;
        for (const auto &workload : microbenchmarks()) {
            Program base = buildWorkload(workload);
            ProfileData profile = prepareProgram(base);
            FuncSimResult oracle = runFunctional(base);

            SessionOptions bb_options;
            bb_options.pipeline = Pipeline::BB;
            ConfigResult bb =
                measure(base, profile, bb_options, oracle.returnValue,
                        oracle.memoryHash);

            SessionOptions options;
            options.pipeline = Pipeline::IUPO_fused;
            options.target.maxInsts = max_insts;
            ConfigResult run =
                measure(base, profile, options, oracle.returnValue,
                        oracle.memoryHash);

            sum_pct +=
                improvementPct(bb.timing.cycles, run.timing.cycles);
            sum_blockratio +=
                static_cast<double>(run.functional.blocksExecuted) /
                static_cast<double>(bb.functional.blocksExecuted);
            ++count;
        }
        table.addRow({std::to_string(max_insts),
                      TextTable::pct(sum_pct / count),
                      TextTable::fmt(sum_blockratio / count, 2)});
    }

    std::printf("%s", table.render().c_str());
    std::printf("\nheadline: tiny blocks forfeit the block-overhead "
                "amortization; the gain saturates near the TRIPS "
                "choice of 128.\n");
    return 0;
}
