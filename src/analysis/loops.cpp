#include "analysis/loops.h"

#include <algorithm>

#include "support/fatal.h"

namespace chf {

LoopInfo::LoopInfo(const Function &fn)
    : ownedDom(std::make_unique<DominatorTree>(fn)),
      domTree(ownedDom.get())
{
    build(fn, fn.predecessors());
}

LoopInfo::LoopInfo(const Function &fn, const DominatorTree &dom,
                   const PredecessorMap &preds)
    : domTree(&dom)
{
    build(fn, preds);
}

void
LoopInfo::build(const Function &fn, const PredecessorMap &preds)
{
    blockDepth.assign(fn.blockTableSize(), 0);

    // Find back edges and group them by header.
    std::vector<std::pair<BlockId, BlockId>> back_edges;
    for (BlockId id : fn.blockIds()) {
        if (!domTree->reachable(id))
            continue;
        for (BlockId succ : fn.block(id)->successors()) {
            if (domTree->dominates(succ, id))
                back_edges.emplace_back(id, succ);
        }
    }

    // Build one natural loop per header: all blocks that can reach a
    // latch without passing through the header.
    std::vector<BlockId> headers;
    for (const auto &[latch, header] : back_edges) {
        if (std::find(headers.begin(), headers.end(), header) ==
            headers.end()) {
            headers.push_back(header);
        }
    }

    for (BlockId header : headers) {
        Loop loop;
        loop.header = header;
        std::vector<uint8_t> in_loop(fn.blockTableSize(), 0);
        in_loop[header] = 1;
        loop.blocks.push_back(header);
        std::vector<BlockId> worklist;
        for (const auto &[latch, h] : back_edges) {
            if (h != header)
                continue;
            loop.latches.push_back(latch);
            if (!in_loop[latch]) {
                in_loop[latch] = 1;
                loop.blocks.push_back(latch);
                worklist.push_back(latch);
            }
        }
        while (!worklist.empty()) {
            BlockId b = worklist.back();
            worklist.pop_back();
            for (BlockId p : preds[b]) {
                if (!domTree->reachable(p) || in_loop[p])
                    continue;
                in_loop[p] = 1;
                loop.blocks.push_back(p);
                worklist.push_back(p);
            }
        }
        std::sort(loop.blocks.begin(), loop.blocks.end());
        allLoops.push_back(std::move(loop));
    }

    // Depth: number of loops containing each block; loop depth = depth
    // of its header.
    for (const Loop &loop : allLoops) {
        for (BlockId b : loop.blocks)
            blockDepth[b]++;
    }
    for (Loop &loop : allLoops)
        loop.depth = blockDepth[loop.header];
}

void
LoopInfo::applyBlockAbsorbed(BlockId hb, BlockId s)
{
    // s cannot be a header: a simple merge requires its only pred's
    // edge not be a back edge, so no loop disappears and no depth
    // changes. Bodies lose s; a latch s becomes a latch hb (hb
    // inherited the back edge). Keep blocks and latches in the
    // ascending order a fresh build produces.
    for (Loop &loop : allLoops) {
        auto pos = std::lower_bound(loop.blocks.begin(),
                                    loop.blocks.end(), s);
        if (pos != loop.blocks.end() && *pos == s)
            loop.blocks.erase(pos);

        auto &latches = loop.latches;
        auto latch = std::find(latches.begin(), latches.end(), s);
        if (latch != latches.end()) {
            latches.erase(latch);
            auto at = std::lower_bound(latches.begin(), latches.end(),
                                       hb);
            if (at == latches.end() || *at != hb)
                latches.insert(at, hb);
        }
    }
    if (s < blockDepth.size())
        blockDepth[s] = 0;
}

bool
LoopInfo::isBackEdge(BlockId from, BlockId to) const
{
    return domTree->reachable(from) && domTree->dominates(to, from);
}

bool
LoopInfo::isLoopHeader(BlockId id) const
{
    return loopAt(id) != nullptr;
}

const Loop *
LoopInfo::loopAt(BlockId header) const
{
    for (const Loop &loop : allLoops) {
        if (loop.header == header)
            return &loop;
    }
    return nullptr;
}

const Loop *
LoopInfo::innermostContaining(BlockId id) const
{
    const Loop *best = nullptr;
    for (const Loop &loop : allLoops) {
        if (loop.contains(id) && (!best || loop.depth > best->depth))
            best = &loop;
    }
    return best;
}

int
LoopInfo::depth(BlockId id) const
{
    if (id >= blockDepth.size())
        return 0;
    return blockDepth[id];
}

} // namespace chf
