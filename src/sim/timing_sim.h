/**
 * @file
 * Cycle-level timing simulator for a TRIPS-like EDGE processor.
 *
 * This is the reproduction's substitute for the paper's proprietary
 * cycle-accurate simulator. It models the first-order mechanisms the
 * paper's results depend on:
 *
 *  - Block-atomic execution: blocks are fetched and mapped with a fixed
 *    latency, at most 8 are in flight, and commits are serialized one
 *    per cycle -- so executed-block count carries a per-block overhead
 *    (the linear relation behind Fig. 7).
 *  - Dataflow issue inside a block: an instruction issues when its
 *    operands (including its predicate) arrive; operands travel one
 *    cycle per Manhattan hop between the 4x4 execution tiles of the
 *    scheduler's placement; each tile issues one instruction per cycle.
 *  - Early block completion: the block's outputs are the times of its
 *    *fired* instructions only; a long falsely-predicated path does not
 *    delay commit (the EDGE property that makes dependence-height
 *    heuristics less important, paper §5).
 *  - Predication turning control into data dependence: a predicated
 *    instruction waits for its predicate, so a tail-duplicated
 *    induction update stalls on the exit test -- the bzip2_3 effect of
 *    Table 2.
 *  - Next-block prediction with misprediction flushes: a wrong
 *    prediction restarts fetch after the branch resolves plus a
 *    penalty, so removing unpredictable branches pays (parser_1).
 *
 * Values crossing blocks flow through the register file and are
 * forwarded as produced.
 */

#ifndef CHF_SIM_TIMING_SIM_H
#define CHF_SIM_TIMING_SIM_H

#include <map>

#include "backend/scheduler.h"
#include "ir/program.h"
#include "sim/predictor.h"

namespace chf {

/** Microarchitectural parameters. */
struct TimingConfig
{
    SchedulerOptions grid;

    /** Cycles from fetch start to first instruction eligible. */
    int fetchMapLatency = 10;

    /** Instructions entering the block per cycle after map. */
    int fetchBandwidth = 16;

    /** Speculative block window (TRIPS: 8 blocks, 7 speculative). */
    int maxInFlightBlocks = 8;

    /** Extra cycles after branch resolution on a misprediction. */
    int mispredictPenalty = 14;

    /** Cycles from last output to commit. */
    int commitLatency = 2;

    /**
     * Register file access latency for cross-block values: a round
     * trip through the register tiles and operand network. In-block
     * producer-consumer pairs avoid it -- the communication saving
     * that motivates dense hyperblocks.
     */
    int regReadLatency = 2;

    /**
     * Minimum cycles between consecutive block fetch starts: the
     * per-block protocol cost (prediction, header fetch, tile
     * distribution) that underfull blocks cannot amortize -- the
     * `overhead` term of the paper's cycles = base + blocks * overhead
     * relation (§7.3).
     */
    int blockDispatchInterval = 10;

    unsigned predictorBits = 12;

    /**
     * Model operand-network injection contention: each tile can inject
     * one operand per cycle into the network, so wide fanout from one
     * tile serializes its sends. Off by default (the balanced fanout
     * trees already spread load); enable to study network sensitivity.
     */
    bool modelNetworkContention = false;

    uint64_t maxBlocks = 100'000'000;
};

/** Result of a timing run. */
struct TimingResult
{
    uint64_t cycles = 0;
    uint64_t blocksExecuted = 0;
    uint64_t instsFetched = 0;
    uint64_t instsExecuted = 0;
    uint64_t branchPredictions = 0;
    uint64_t branchMispredicts = 0;
    int64_t returnValue = 0;
    uint64_t memoryHash = 0;

    /** Diagnostics: summed (commit - fetch_start) over blocks. */
    double sumBlockLatency = 0.0;

    /** Diagnostics: summed (outputs_done - map_done) over blocks. */
    double sumCritPath = 0.0;

    /** Diagnostics: per-static-block summed critical path / counts. */
    std::vector<double> critByBlock;
    std::vector<uint64_t> execByBlock;

    double
    mispredictRate() const
    {
        return branchPredictions == 0
                   ? 0.0
                   : static_cast<double>(branchMispredicts) /
                         static_cast<double>(branchPredictions);
    }
};

/**
 * Run @p program through the timing model using @p placement from the
 * scheduler (blocks missing from the map are placed on demand).
 */
TimingResult runTiming(const Program &program,
                       const std::map<BlockId, Placement> &placement,
                       const TimingConfig &config = {},
                       const std::vector<int64_t> &args = {});

/** Convenience: schedule then simulate. */
TimingResult runTiming(const Program &program,
                       const TimingConfig &config = {},
                       const std::vector<int64_t> &args = {});

} // namespace chf

#endif // CHF_SIM_TIMING_SIM_H
