#include "tuner/auto_tuner.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "sim/functional_sim.h"
#include "sim/timing_sim.h"
#include "support/fatal.h"

namespace chf {

namespace {

/** Deep copy of a program (Function holds unique_ptrs). */
Program
cloneProgram(const Program &program)
{
    Program copy;
    copy.fn = program.fn.clone();
    copy.memory = program.memory;
    copy.defaultArgs = program.defaultArgs;
    return copy;
}

size_t
staticInsts(const Function &fn)
{
    size_t n = 0;
    for (BlockId id : fn.blockIds())
        n += fn.block(id)->size();
    return n;
}

/** A candidate waiting to be evaluated. */
struct Candidate
{
    PolicyKind policy;
    TargetModel target;
    std::string label;
};

/** Dedupe key: every searched knob, plus the policy. */
std::string
candidateKey(PolicyKind policy, const TargetModel &target)
{
    return concat(static_cast<int>(policy), "/", target.maxInsts, "/",
                  target.spillHeadroom);
}

std::string
candidateLabel(PolicyKind policy, const TargetModel &target)
{
    return concat(policyKindName(policy), "/insts", target.maxInsts,
                  "/headroom", target.spillHeadroom);
}

/** Fixed-precision double rendering so reports are byte-stable. */
std::string
fmtDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4f", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** p dominates q: no worse on every axis, better on at least one. */
bool
dominates(const TunerPoint &p, const TunerPoint &q)
{
    bool no_worse = p.blocks <= q.blocks &&
                    p.codeGrowth <= q.codeGrowth && p.cycles <= q.cycles;
    bool better = p.blocks < q.blocks || p.codeGrowth < q.codeGrowth ||
                  p.cycles < q.cycles;
    return no_worse && better;
}

} // namespace

AutoTuner::AutoTuner(TunerOptions options) : opts(std::move(options))
{
    std::string problem = opts.baseTarget.validate();
    if (!problem.empty())
        fatal(concat("AutoTuner base target: ", problem));
    if (opts.policies.empty())
        fatal("AutoTuner wants at least one policy");
    if (opts.maxTrials == 0)
        fatal("AutoTuner wants a positive trial budget");
}

TunerReport
AutoTuner::tune(const Program &prepared, const ProfileData &profile)
{
    TunerReport report;
    report.baselineInsts = staticInsts(prepared.fn);
    FuncSimResult oracle = runFunctional(prepared);

    // Evaluate a batch of candidates as one Session: units run in
    // parallel on the shared pool and reuse the trial-memo store, and
    // results come back bit-identical at any thread count.
    std::set<std::string> seen;
    auto evaluate = [&](const std::vector<Candidate> &batch) {
        if (batch.empty())
            return;
        Session session(SessionOptions().withThreads(opts.threads));
        for (const Candidate &c : batch) {
            session.addProgram(
                cloneProgram(prepared), profile, c.label,
                SessionOptions()
                    .withPipeline(opts.pipeline)
                    .withPolicy(c.policy)
                    .withTarget(c.target));
        }
        SessionResult compiled = session.compile();
        for (size_t i = 0; i < batch.size(); ++i) {
            const Program &program = session.program(i);
            FuncSimResult functional = runFunctional(program);
            if (functional.returnValue != oracle.returnValue ||
                functional.memoryHash != oracle.memoryHash) {
                fatal(concat("semantics changed under ",
                             batch[i].label));
            }
            TunerPoint point;
            point.label = batch[i].label;
            point.policy = batch[i].policy;
            point.target = batch[i].target;
            point.blocks = compiled.functions[i].blocks;
            point.insts = compiled.functions[i].insts;
            point.codeGrowth =
                report.baselineInsts
                    ? static_cast<double>(point.insts) /
                          static_cast<double>(report.baselineInsts)
                    : 1.0;
            point.cycles = runTiming(program).cycles;
            report.points.push_back(std::move(point));
        }
    };

    // Budget-governed admission: false once the budget is spent.
    size_t admitted = 0;
    auto admit = [&](PolicyKind policy, const TargetModel &target,
                     std::vector<Candidate> &batch, bool count_drop) {
        std::string key = candidateKey(policy, target);
        if (seen.count(key))
            return;
        if (admitted >= opts.maxTrials) {
            if (count_drop)
                ++report.truncated;
            return;
        }
        seen.insert(key);
        ++admitted;
        batch.push_back(
            {policy, target, candidateLabel(policy, target)});
    };

    // Grid pass: policies × maxInsts × spillHeadroom, in declaration
    // order so the report order is reproducible.
    std::vector<size_t> insts_grid = opts.maxInstsGrid;
    if (insts_grid.empty())
        insts_grid.push_back(opts.baseTarget.maxInsts);
    std::vector<size_t> headroom_grid = opts.spillHeadroomGrid;
    if (headroom_grid.empty())
        headroom_grid.push_back(opts.baseTarget.spillHeadroom);

    std::vector<Candidate> grid;
    for (PolicyKind policy : opts.policies) {
        for (size_t max_insts : insts_grid) {
            for (size_t headroom : headroom_grid) {
                TargetModel variant = opts.baseTarget;
                variant.maxInsts = max_insts;
                variant.spillHeadroom = headroom;
                if (!variant.validate().empty())
                    continue;
                admit(policy, variant, grid, /*count_drop=*/true);
            }
        }
    }
    evaluate(grid);
    if (report.points.empty())
        fatal("AutoTuner: no valid candidate survived the grid");

    // The incumbent: fewest cycles, deterministic tie-break.
    auto best_index = [&]() {
        size_t best = 0;
        for (size_t i = 1; i < report.points.size(); ++i) {
            const TunerPoint &p = report.points[i];
            const TunerPoint &b = report.points[best];
            if (p.cycles < b.cycles ||
                (p.cycles == b.cycles &&
                 (p.codeGrowth < b.codeGrowth ||
                  (p.codeGrowth == b.codeGrowth && p.label < b.label))))
                best = i;
        }
        return best;
    };

    // Greedy refinement: step the incumbent's knobs, re-evaluate, stop
    // when a round adds nothing or the budget runs dry.
    for (int round = 0; round < opts.greedyRounds; ++round) {
        const TunerPoint incumbent = report.points[best_index()];
        std::vector<Candidate> neighbors;
        auto step = [&](size_t max_insts, size_t headroom) {
            TargetModel variant = incumbent.target;
            variant.maxInsts = max_insts;
            variant.spillHeadroom = headroom;
            if (variant.validate().empty())
                admit(incumbent.policy, variant, neighbors,
                      /*count_drop=*/false);
        };
        const TargetModel &t = incumbent.target;
        step(t.maxInsts / 2, t.spillHeadroom);
        step(t.maxInsts * 2, t.spillHeadroom);
        step(t.maxInsts, t.spillHeadroom + 2);
        if (t.spillHeadroom >= 2)
            step(t.maxInsts, t.spillHeadroom - 2);
        if (neighbors.empty())
            break;
        evaluate(neighbors);
    }

    report.best = best_index();

    for (size_t i = 0; i < report.points.size(); ++i) {
        bool dominated = false;
        for (size_t j = 0; j < report.points.size() && !dominated; ++j)
            dominated = dominates(report.points[j], report.points[i]);
        report.points[i].pareto = !dominated;
        if (!dominated)
            report.paretoFront.push_back(i);
    }
    return report;
}

std::string
TunerReport::toJson(const std::string &workload) const
{
    std::string out = "{";
    if (!workload.empty())
        out += concat("\"workload\":\"", jsonEscape(workload), "\",");
    out += concat("\"baseline_insts\":", baselineInsts,
                  ",\"truncated\":", truncated, ",\"points\":[");
    for (size_t i = 0; i < points.size(); ++i) {
        const TunerPoint &p = points[i];
        if (i)
            out += ",";
        out += concat(
            "{\"label\":\"", jsonEscape(p.label), "\",\"policy\":\"",
            policyKindName(p.policy), "\",\"target\":{\"name\":\"",
            jsonEscape(p.target.name),
            "\",\"max_insts\":", p.target.maxInsts,
            ",\"max_mem_ops\":", p.target.maxMemOps,
            ",\"lsq_depth\":", p.target.lsqDepth,
            ",\"banks\":", p.target.numRegBanks,
            ",\"spill_headroom\":", p.target.spillHeadroom,
            "},\"blocks\":", p.blocks, ",\"insts\":", p.insts,
            ",\"code_growth\":", fmtDouble(p.codeGrowth),
            ",\"cycles\":", p.cycles,
            ",\"pareto\":", p.pareto ? "true" : "false", "}");
    }
    out += "],\"pareto_front\":[";
    for (size_t i = 0; i < paretoFront.size(); ++i)
        out += concat(i ? "," : "", paretoFront[i]);
    out += concat("],\"best\":", best, ",\"best_label\":\"",
                  jsonEscape(points.empty() ? "" : points[best].label),
                  "\"}");
    return out;
}

} // namespace chf
