#include "transform/copy_prop.h"

#include <algorithm>
#include <map>

#include "analysis/liveness.h"

namespace chf {

size_t
copyPropagateBlock(BasicBlock &bb)
{
    // Map from copy destination to its source operand, valid until
    // either side is redefined.
    std::map<Vreg, Operand> copies;
    size_t rewritten = 0;

    auto invalidate = [&](Vreg v) {
        copies.erase(v);
        for (auto it = copies.begin(); it != copies.end();) {
            if (it->second.isReg() && it->second.reg == v)
                it = copies.erase(it);
            else
                ++it;
        }
    };

    for (auto &inst : bb.insts) {
        // Rewrite register sources.
        for (int i = 0; i < inst.numSrcs(); ++i) {
            if (!inst.srcs[i].isReg())
                continue;
            auto it = copies.find(inst.srcs[i].reg);
            if (it != copies.end()) {
                inst.srcs[i] = it->second;
                ++rewritten;
            }
        }
        // Rewrite the predicate register only when the copy source is
        // itself a register (predicates cannot hold immediates).
        if (inst.pred.valid()) {
            auto it = copies.find(inst.pred.reg);
            if (it != copies.end() && it->second.isReg()) {
                inst.pred.reg = it->second.reg;
                ++rewritten;
            }
        }

        if (inst.hasDest()) {
            invalidate(inst.dest);
            if (inst.op == Opcode::Mov && !inst.pred.valid() &&
                !(inst.srcs[0].isReg() && inst.srcs[0].reg == inst.dest)) {
                copies[inst.dest] = inst.srcs[0];
            }
        }
    }
    return rewritten;
}

size_t
copyPropagateFunction(Function &fn)
{
    size_t total = 0;
    for (BlockId id : fn.blockIds())
        total += copyPropagateBlock(*fn.block(id));
    return total;
}

size_t
coalesceMoves(BasicBlock &bb, const BitVector &live_out)
{
    size_t nv = live_out.size();

    // Per-register def counts, use counts, and predicate-use flags.
    std::vector<uint32_t> defs(nv, 0), uses(nv, 0);
    std::vector<uint8_t> pred_use(nv, 0);
    auto recount = [&]() {
        std::fill(defs.begin(), defs.end(), 0);
        std::fill(uses.begin(), uses.end(), 0);
        std::fill(pred_use.begin(), pred_use.end(), 0);
        for (const auto &inst : bb.insts) {
            for (int s = 0; s < inst.numSrcs(); ++s) {
                if (inst.srcs[s].isReg() && inst.srcs[s].reg < nv)
                    uses[inst.srcs[s].reg]++;
            }
            if (inst.pred.valid() && inst.pred.reg < nv)
                pred_use[inst.pred.reg] = 1;
            if (inst.hasDest() && inst.dest < nv)
                defs[inst.dest]++;
        }
    };
    recount();

    size_t coalesced = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t j = 0; j < bb.insts.size(); ++j) {
            const Instruction &mov = bb.insts[j];
            if (mov.op != Opcode::Mov || mov.pred.valid() ||
                !mov.srcs[0].isReg()) {
                continue;
            }
            Vreg t = mov.srcs[0].reg;
            Vreg x = mov.dest;
            if (t == x || t >= nv || x >= nv)
                continue;
            // t must be a one-def, one-use (this mov) local temporary.
            if (defs[t] != 1 || uses[t] != 1 || pred_use[t] ||
                live_out.test(t)) {
                continue;
            }
            // Locate t's def before the mov.
            size_t i = j;
            bool found = false;
            while (i-- > 0) {
                if (bb.insts[i].hasDest() && bb.insts[i].dest == t) {
                    found = true;
                    break;
                }
            }
            if (!found || bb.insts[i].pred.valid() ||
                bb.insts[i].isBranch()) {
                continue;
            }
            // x must be untouched between the def and the mov.
            bool interference = false;
            for (size_t k = i + 1; k < j && !interference; ++k) {
                const Instruction &mid = bb.insts[k];
                if (mid.hasDest() && mid.dest == x)
                    interference = true;
                mid.forEachUse([&](Vreg v) {
                    if (v == x)
                        interference = true;
                });
            }
            if (interference)
                continue;

            bb.insts[i].dest = x;
            bb.insts.erase(bb.insts.begin() + static_cast<long>(j));
            ++coalesced;
            changed = true;
            recount();
            break;
        }
    }
    return coalesced;
}

size_t
coalesceMovesFunction(Function &fn)
{
    Liveness liveness(fn);
    size_t total = 0;
    for (BlockId id : fn.blockIds()) {
        BasicBlock *bb = fn.block(id);
        total += coalesceMoves(*bb, liveness.liveOutOf(fn, *bb));
    }
    return total;
}

} // namespace chf
