file(REMOVE_RECURSE
  "CMakeFiles/while_loop_pipeline.dir/while_loop_pipeline.cpp.o"
  "CMakeFiles/while_loop_pipeline.dir/while_loop_pipeline.cpp.o.d"
  "while_loop_pipeline"
  "while_loop_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/while_loop_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
