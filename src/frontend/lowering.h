/**
 * @file
 * Lowering from the TinyC AST to the predicated RISC-like IR.
 *
 * Mirrors the Scale front end of the paper's Fig. 6: all calls are
 * inlined (recursion is rejected), globals live in the flat memory
 * image, and the result is a single-function CFG of basic blocks ready
 * for scalar optimization and hyperblock formation.
 */

#ifndef CHF_FRONTEND_LOWERING_H
#define CHF_FRONTEND_LOWERING_H

#include <string>

#include "frontend/ast.h"
#include "ir/program.h"

namespace chf {

/** Lowering knobs. */
struct LoweringOptions
{
    /** Inlining depth limit; exceeding it is a fatal error. */
    int maxInlineDepth = 24;
};

/**
 * Lower @p unit into a runnable Program whose entry function is
 * @p entry_name. Fatal on semantic errors (unknown names, recursion,
 * arity mismatches).
 */
Program lowerToIR(const TranslationUnit &unit,
                  const std::string &entry_name = "main",
                  const LoweringOptions &options = {});

/** Convenience: parse + lower in one step. */
Program compileTinyC(const std::string &source,
                     const std::string &entry_name = "main",
                     const LoweringOptions &options = {});

} // namespace chf

#endif // CHF_FRONTEND_LOWERING_H
