/**
 * @file
 * WorkStealingPool unit and stress tests: steal-heavy load, shutdown
 * racing in-flight steals, nested submission from inside a task, and
 * the thread-identity queries MergeEngine's parallel trials depend on.
 * All of these run under CHF_SANITIZE=thread in scripts/check_tsan.sh
 * (ctest -L parallel), which is the real gate — the assertions here
 * catch lost or double-run tasks, TSan catches ordering bugs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "support/thread_pool.h"

namespace chf {
namespace {

TEST(WorkStealingPool, InlinePoolRunsOnCallingThread)
{
    // 0 or 1 workers spawn no threads: submit() executes inline, so a
    // single-threaded Session takes the exact sequential code path.
    for (size_t workers : {0u, 1u}) {
        WorkStealingPool pool(workers);
        EXPECT_LE(pool.workerCount(), workers);
        const std::thread::id caller = std::this_thread::get_id();
        std::thread::id ran_on;
        pool.submit([&] { ran_on = std::this_thread::get_id(); });
        EXPECT_EQ(ran_on, caller);
        pool.waitIdle();
        EXPECT_EQ(pool.tasksCompleted(), 1u);
        EXPECT_EQ(pool.tasksStolen(), 0u);
    }
}

TEST(WorkStealingPool, ExternalSubmitCompletesEverything)
{
    WorkStealingPool pool(4);
    std::atomic<int> sum{0};
    constexpr int kTasks = 500;
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&sum, i] { sum.fetch_add(i); });
    pool.waitIdle();
    EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
    EXPECT_EQ(pool.tasksCompleted(), static_cast<size_t>(kTasks));
}

TEST(WorkStealingPool, StealHeavyStress)
{
    // One producer task floods its *own* deque with tiny tasks (nested
    // submission is owner-local by design), so every other worker can
    // make progress only by stealing. All tasks must run exactly once.
    WorkStealingPool pool(4);
    std::atomic<size_t> ran{0};
    constexpr size_t kTiny = 4000;
    pool.submit([&] {
        for (size_t i = 0; i < kTiny; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
    });
    pool.waitIdle();
    EXPECT_EQ(ran.load(), kTiny);
    EXPECT_EQ(pool.tasksCompleted(), kTiny + 1);
    // With >1 hardware thread the flood is provably stolen from; on a
    // single-core machine the producer can legitimately drain its own
    // deque between preemptions, so only assert when steals can't be
    // scheduled away.
    if (WorkStealingPool::hardwareThreads() >= 2) {
        EXPECT_GT(pool.tasksStolen(), 0u);
    }
}

TEST(WorkStealingPool, ShutdownWhileStealing)
{
    // Destroy the pool immediately after a burst of submissions, with
    // workers mid-steal. The destructor contract: every accepted task
    // still executes, none twice. Iterate to shake schedules loose.
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> ran{0};
        constexpr int kTasks = 64;
        {
            WorkStealingPool pool(4);
            for (int i = 0; i < kTasks; ++i)
                pool.submit([&ran] { ran.fetch_add(1); });
            // No waitIdle: the destructor races the in-flight steals.
        }
        EXPECT_EQ(ran.load(), kTasks) << "round " << round;
    }
}

TEST(WorkStealingPool, NestedTaskGroupFromInsideATask)
{
    // The trial-parallelism shape: a pool task spawns a TaskGroup and
    // waits on it while still inside the pool. wait() must help run
    // pool tasks rather than sleep, so this cannot deadlock even when
    // every worker is blocked in a nested wait.
    WorkStealingPool pool(2);
    std::atomic<int> leaves{0};
    WorkStealingPool::TaskGroup outer(pool);
    for (int i = 0; i < 8; ++i) {
        outer.spawn([&] {
            WorkStealingPool::TaskGroup inner(pool);
            for (int j = 0; j < 8; ++j)
                inner.spawn([&leaves] { leaves.fetch_add(1); });
            inner.wait();
        });
    }
    outer.wait();
    EXPECT_EQ(leaves.load(), 64);
}

TEST(WorkStealingPool, TaskGroupIsolation)
{
    // A group's wait() returns when *its* tasks are done; unrelated
    // pool work may still be pending (waitIdle covers that).
    WorkStealingPool pool(2);
    std::atomic<int> grouped{0};
    std::atomic<int> loose{0};
    for (int i = 0; i < 32; ++i)
        pool.submit([&loose] { loose.fetch_add(1); });
    {
        WorkStealingPool::TaskGroup group(pool);
        for (int i = 0; i < 32; ++i)
            group.spawn([&grouped] { grouped.fetch_add(1); });
        group.wait();
        EXPECT_EQ(grouped.load(), 32);
    }
    pool.waitIdle();
    EXPECT_EQ(loose.load(), 32);
}

TEST(WorkStealingPool, CurrentAndWorkerIndex)
{
    WorkStealingPool pool(3);
    // Non-worker threads: no current pool, index == workerCount()
    // (the extra per-thread arena slot).
    EXPECT_EQ(WorkStealingPool::current(), nullptr);
    EXPECT_EQ(pool.currentWorkerIndex(), pool.workerCount());

    // A spawned task runs either on a pool worker (current() == &pool,
    // index < workerCount()) or on this thread while wait() helps
    // (current() == nullptr, index == workerCount() — the external
    // arena slot). Both identities must be consistent; anything else
    // would hand two concurrent tasks the same scratch arena.
    std::atomic<bool> identity_ok{true};
    const std::thread::id caller = std::this_thread::get_id();
    WorkStealingPool::TaskGroup group(pool);
    for (int i = 0; i < 16; ++i) {
        group.spawn([&] {
            const bool on_worker =
                std::this_thread::get_id() != caller;
            WorkStealingPool *cur = WorkStealingPool::current();
            const size_t index = pool.currentWorkerIndex();
            const bool ok =
                on_worker ? (cur == &pool && index < pool.workerCount())
                          : (cur == nullptr &&
                             index == pool.workerCount());
            if (!ok)
                identity_ok = false;
        });
    }
    group.wait();
    EXPECT_TRUE(identity_ok.load());
}

TEST(WorkStealingPool, HardwareThreadsHasFloorOfOne)
{
    EXPECT_GE(WorkStealingPool::hardwareThreads(), 1u);
}

} // namespace
} // namespace chf
