file(REMOVE_RECURSE
  "CMakeFiles/figure7_correlation.dir/figure7_correlation.cpp.o"
  "CMakeFiles/figure7_correlation.dir/figure7_correlation.cpp.o.d"
  "figure7_correlation"
  "figure7_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
