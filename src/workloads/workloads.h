/**
 * @file
 * Benchmark registry.
 *
 * The paper evaluates microbenchmarks "derived by extracting loops and
 * procedures from SPEC2000, and with signal-processing kernels from the
 * GMTI radar suite, a 10x10 matrix multiply, sieve, and Dhrystone"
 * (§7), plus whole SPEC2000 programs under the functional simulator
 * (§7.3). Neither source set is redistributable, so each workload here
 * is a TinyC program written to reproduce the *control-flow structure*
 * the paper relies on (low-trip while loops for ammp, a loop-carried
 * induction update in a merge block for bzip2_3, rarely-taken deep
 * paths for parser_1, ...). See DESIGN.md's substitution table.
 */

#ifndef CHF_WORKLOADS_WORKLOADS_H
#define CHF_WORKLOADS_WORKLOADS_H

#include <functional>
#include <string>
#include <vector>

#include "ir/program.h"
#include "support/random.h"

namespace chf {

/** One registered benchmark. */
struct Workload
{
    std::string name;

    /** What structure of the paper's benchmark this reproduces. */
    std::string note;

    /** TinyC source. */
    std::string source;

    /** Arguments passed to main(). */
    std::vector<int64_t> args;

    /** Optional host-side array initialization (deterministic). */
    std::function<void(MemoryImage &, Rng &)> fill;
};

/** The 24 microbenchmarks of Tables 1 and 2. */
const std::vector<Workload> &microbenchmarks();

/** The 19 SPEC-like programs of Table 3. */
const std::vector<Workload> &speclikeBenchmarks();

/** Find a workload by name in both suites; nullptr if absent. */
const Workload *findWorkload(const std::string &name);

/**
 * Synthetic scaled workload "synthN": @p regions independent low-trip
 * loops, each with two branch diamonds. The speclike suite tops out
 * around 40 blocks; this produces the several-hundred-block functions
 * where analysis-cache and parallel-session effects dominate. Shared
 * by bench/pass_speed and the session stress tests.
 */
Workload synthFormationWorkload(int regions);

/** Compile a workload and apply its memory initialization. */
Program buildWorkload(const Workload &workload);

} // namespace chf

#endif // CHF_WORKLOADS_WORKLOADS_H
