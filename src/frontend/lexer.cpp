#include "frontend/lexer.h"

#include <cctype>
#include <stdexcept>

#include "support/diagnostics.h"
#include "support/fatal.h"

namespace chf {

const char *
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::End: return "end of input";
      case TokenKind::IntLit: return "integer literal";
      case TokenKind::Ident: return "identifier";
      case TokenKind::KwInt: return "'int'";
      case TokenKind::KwIf: return "'if'";
      case TokenKind::KwElse: return "'else'";
      case TokenKind::KwWhile: return "'while'";
      case TokenKind::KwFor: return "'for'";
      case TokenKind::KwDo: return "'do'";
      case TokenKind::KwReturn: return "'return'";
      case TokenKind::KwBreak: return "'break'";
      case TokenKind::KwContinue: return "'continue'";
      case TokenKind::LParen: return "'('";
      case TokenKind::RParen: return "')'";
      case TokenKind::LBrace: return "'{'";
      case TokenKind::RBrace: return "'}'";
      case TokenKind::LBracket: return "'['";
      case TokenKind::RBracket: return "']'";
      case TokenKind::Semicolon: return "';'";
      case TokenKind::Comma: return "','";
      case TokenKind::Question: return "'?'";
      case TokenKind::Colon: return "':'";
      case TokenKind::Assign: return "'='";
      case TokenKind::PlusAssign: return "'+='";
      case TokenKind::MinusAssign: return "'-='";
      case TokenKind::StarAssign: return "'*='";
      case TokenKind::SlashAssign: return "'/='";
      case TokenKind::PercentAssign: return "'%='";
      case TokenKind::Plus: return "'+'";
      case TokenKind::Minus: return "'-'";
      case TokenKind::Star: return "'*'";
      case TokenKind::Slash: return "'/'";
      case TokenKind::Percent: return "'%'";
      case TokenKind::Amp: return "'&'";
      case TokenKind::Pipe: return "'|'";
      case TokenKind::Caret: return "'^'";
      case TokenKind::Tilde: return "'~'";
      case TokenKind::Shl: return "'<<'";
      case TokenKind::Shr: return "'>>'";
      case TokenKind::AmpAmp: return "'&&'";
      case TokenKind::PipePipe: return "'||'";
      case TokenKind::Bang: return "'!'";
      case TokenKind::Eq: return "'=='";
      case TokenKind::Ne: return "'!='";
      case TokenKind::Lt: return "'<'";
      case TokenKind::Le: return "'<='";
      case TokenKind::Gt: return "'>'";
      case TokenKind::Ge: return "'>='";
    }
    return "?";
}

std::vector<Token>
lex(const std::string &source)
{
    std::vector<Token> tokens;
    size_t i = 0;
    int line = 1;
    size_t line_start = 0;
    size_t n = source.size();

    auto peek = [&](size_t k = 0) -> char {
        return i + k < n ? source[i + k] : '\0';
    };

    auto column = [&](size_t at) -> int {
        return static_cast<int>(at - line_start) + 1;
    };

    auto push = [&](TokenKind kind, std::string text, size_t advance) {
        Token tok;
        tok.kind = kind;
        tok.text = std::move(text);
        tok.line = line;
        tok.col = column(i);
        tokens.push_back(std::move(tok));
        i += advance;
    };

    while (i < n) {
        char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            line_start = i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            while (i < n && source[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            int open_line = line;
            int open_col = column(i);
            i += 2;
            while (i < n && !(source[i] == '*' && peek(1) == '/')) {
                if (source[i] == '\n') {
                    ++line;
                    line_start = i + 1;
                }
                ++i;
            }
            if (i >= n) {
                throwInputError("lex",
                                SourceLoc::at(open_line, open_col),
                                "unterminated comment");
            }
            i += 2;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t start = i;
            while (i < n &&
                   std::isdigit(static_cast<unsigned char>(source[i]))) {
                ++i;
            }
            Token tok;
            tok.kind = TokenKind::IntLit;
            tok.text = source.substr(start, i - start);
            try {
                tok.intValue = std::stoll(tok.text);
            } catch (const std::out_of_range &) {
                throwInputError("lex", SourceLoc::at(line, column(start)),
                                "integer literal out of range: " +
                                    tok.text);
            }
            tok.line = line;
            tok.col = column(start);
            tokens.push_back(std::move(tok));
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = i;
            while (i < n &&
                   (std::isalnum(static_cast<unsigned char>(source[i])) ||
                    source[i] == '_')) {
                ++i;
            }
            std::string text = source.substr(start, i - start);
            TokenKind kind = TokenKind::Ident;
            if (text == "int") kind = TokenKind::KwInt;
            else if (text == "if") kind = TokenKind::KwIf;
            else if (text == "else") kind = TokenKind::KwElse;
            else if (text == "while") kind = TokenKind::KwWhile;
            else if (text == "for") kind = TokenKind::KwFor;
            else if (text == "do") kind = TokenKind::KwDo;
            else if (text == "return") kind = TokenKind::KwReturn;
            else if (text == "break") kind = TokenKind::KwBreak;
            else if (text == "continue") kind = TokenKind::KwContinue;
            Token tok;
            tok.kind = kind;
            tok.text = std::move(text);
            tok.line = line;
            tok.col = column(start);
            tokens.push_back(std::move(tok));
            continue;
        }

        char c1 = peek(1);
        switch (c) {
          case '(': push(TokenKind::LParen, "(", 1); continue;
          case ')': push(TokenKind::RParen, ")", 1); continue;
          case '{': push(TokenKind::LBrace, "{", 1); continue;
          case '}': push(TokenKind::RBrace, "}", 1); continue;
          case '[': push(TokenKind::LBracket, "[", 1); continue;
          case ']': push(TokenKind::RBracket, "]", 1); continue;
          case ';': push(TokenKind::Semicolon, ";", 1); continue;
          case ',': push(TokenKind::Comma, ",", 1); continue;
          case '?': push(TokenKind::Question, "?", 1); continue;
          case ':': push(TokenKind::Colon, ":", 1); continue;
          case '~': push(TokenKind::Tilde, "~", 1); continue;
          case '^': push(TokenKind::Caret, "^", 1); continue;
          case '+':
            c1 == '=' ? push(TokenKind::PlusAssign, "+=", 2)
                      : push(TokenKind::Plus, "+", 1);
            continue;
          case '-':
            c1 == '=' ? push(TokenKind::MinusAssign, "-=", 2)
                      : push(TokenKind::Minus, "-", 1);
            continue;
          case '*':
            c1 == '=' ? push(TokenKind::StarAssign, "*=", 2)
                      : push(TokenKind::Star, "*", 1);
            continue;
          case '/':
            c1 == '=' ? push(TokenKind::SlashAssign, "/=", 2)
                      : push(TokenKind::Slash, "/", 1);
            continue;
          case '%':
            c1 == '=' ? push(TokenKind::PercentAssign, "%=", 2)
                      : push(TokenKind::Percent, "%", 1);
            continue;
          case '&':
            c1 == '&' ? push(TokenKind::AmpAmp, "&&", 2)
                      : push(TokenKind::Amp, "&", 1);
            continue;
          case '|':
            c1 == '|' ? push(TokenKind::PipePipe, "||", 2)
                      : push(TokenKind::Pipe, "|", 1);
            continue;
          case '!':
            c1 == '=' ? push(TokenKind::Ne, "!=", 2)
                      : push(TokenKind::Bang, "!", 1);
            continue;
          case '=':
            c1 == '=' ? push(TokenKind::Eq, "==", 2)
                      : push(TokenKind::Assign, "=", 1);
            continue;
          case '<':
            if (c1 == '<') push(TokenKind::Shl, "<<", 2);
            else if (c1 == '=') push(TokenKind::Le, "<=", 2);
            else push(TokenKind::Lt, "<", 1);
            continue;
          case '>':
            if (c1 == '>') push(TokenKind::Shr, ">>", 2);
            else if (c1 == '=') push(TokenKind::Ge, ">=", 2);
            else push(TokenKind::Gt, ">", 1);
            continue;
          default:
            throwInputError("lex", SourceLoc::at(line, column(i)),
                            concat("unexpected character '", c, "'"));
        }
    }

    Token end;
    end.kind = TokenKind::End;
    end.line = line;
    end.col = column(i);
    tokens.push_back(end);
    return tokens;
}

} // namespace chf
