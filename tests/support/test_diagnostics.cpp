/**
 * @file
 * Unit tests for the diagnostics subsystem and the fault-injection
 * spec parser/injector that drive the transactional pipeline.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "frontend/lowering.h"
#include "ir/verifier.h"
#include "support/diagnostics.h"
#include "support/fault_inject.h"

namespace chf {
namespace {

TEST(Diagnostic, ToStringIncludesAllParts)
{
    Diagnostic d;
    d.severity = Severity::Error;
    d.phase = "formation";
    d.function = "main";
    d.block = 3;
    d.message = "broken invariant";
    std::string text = d.toString();
    EXPECT_NE(text.find("error"), std::string::npos) << text;
    EXPECT_NE(text.find("formation"), std::string::npos) << text;
    EXPECT_NE(text.find("main"), std::string::npos) << text;
    EXPECT_NE(text.find("bb3"), std::string::npos) << text;
    EXPECT_NE(text.find("broken invariant"), std::string::npos) << text;
}

TEST(Diagnostic, ToStringOmitsUnknownParts)
{
    Diagnostic d = Diagnostic::error("lex", "bad token");
    std::string text = d.toString();
    EXPECT_EQ(text.find("bb"), std::string::npos) << text;
    EXPECT_EQ(text.find("fn '"), std::string::npos) << text;
}

TEST(Diagnostic, InputErrorCarriesLocation)
{
    Diagnostic d =
        Diagnostic::inputError("parse", SourceLoc::at(4, 7), "oops");
    EXPECT_TRUE(d.loc.valid());
    std::string text = d.toString();
    EXPECT_NE(text.find("4:7"), std::string::npos) << text;
}

TEST(Diagnostic, LineOnlyLocationOmitsColumn)
{
    Diagnostic d =
        Diagnostic::inputError("ir-parse", SourceLoc::at(9), "oops");
    std::string text = d.toString();
    EXPECT_NE(text.find("9:"), std::string::npos) << text;
    EXPECT_EQ(text.find("9:0"), std::string::npos) << text;
}

TEST(DiagnosticEngine, CountsBySeverity)
{
    DiagnosticEngine engine;
    EXPECT_TRUE(engine.empty());
    engine.error("formation", "first");
    engine.note("formation", "rolled back");
    engine.error("regalloc", "second");
    EXPECT_FALSE(engine.empty());
    EXPECT_EQ(engine.errorCount(), 2u);
    EXPECT_EQ(engine.count(Severity::Note), 1u);
    EXPECT_EQ(engine.diagnostics().size(), 3u);
}

TEST(DiagnosticEngine, HasPhaseMatchesExactly)
{
    DiagnosticEngine engine;
    engine.error("unroll", "x");
    EXPECT_TRUE(engine.hasPhase("unroll"));
    EXPECT_FALSE(engine.hasPhase("unrol"));
    EXPECT_FALSE(engine.hasPhase("peel"));
    engine.clear();
    EXPECT_FALSE(engine.hasPhase("unroll"));
    EXPECT_TRUE(engine.empty());
}

TEST(DiagnosticEngine, ToStringOneLinePerDiagnostic)
{
    DiagnosticEngine engine;
    engine.error("a", "one");
    engine.error("b", "two");
    std::string text = engine.toString();
    EXPECT_NE(text.find("one"), std::string::npos);
    EXPECT_NE(text.find("two"), std::string::npos);
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(RecoverableError, WhatMatchesDiagnostic)
{
    try {
        throwInputError("lower", SourceLoc::at(2, 5), "bad thing");
        FAIL() << "expected throw";
    } catch (const RecoverableError &e) {
        EXPECT_EQ(e.diagnostic().phase, "lower");
        EXPECT_EQ(e.diagnostic().loc.line, 2);
        EXPECT_EQ(e.diagnostic().loc.column, 5);
        EXPECT_STREQ(e.what(), e.diagnostic().toString().c_str());
    }
}

TEST(FaultSpecParse, FullSpec)
{
    FaultSpec spec;
    std::string err;
    ASSERT_TRUE(parseFaultSpec("phase:formation,fn:2,kind:corrupt-ir",
                               &spec, &err))
        << err;
    EXPECT_EQ(spec.phase, "formation");
    EXPECT_EQ(spec.occurrence, 2);
    EXPECT_EQ(spec.kind, FaultSpec::Kind::CorruptIr);
}

TEST(FaultSpecParse, DefaultsAndAliases)
{
    FaultSpec spec;
    std::string err;
    ASSERT_TRUE(parseFaultSpec("kind:throw", &spec, &err)) << err;
    EXPECT_TRUE(spec.phase.empty() || spec.phase == "any");
    EXPECT_EQ(spec.occurrence, 0);
    EXPECT_EQ(spec.kind, FaultSpec::Kind::Throw);

    // "occ" is an alias for "fn"; field order is free.
    ASSERT_TRUE(parseFaultSpec("kind:corrupt-ir,occ:1,phase:peel",
                               &spec, &err))
        << err;
    EXPECT_EQ(spec.phase, "peel");
    EXPECT_EQ(spec.occurrence, 1);
    EXPECT_EQ(spec.kind, FaultSpec::Kind::CorruptIr);
}

TEST(FaultSpecParse, RejectsGarbage)
{
    FaultSpec spec;
    std::string err;
    EXPECT_FALSE(parseFaultSpec("kind:explode", &spec, &err));
    EXPECT_FALSE(err.empty());
    err.clear();
    EXPECT_FALSE(parseFaultSpec("bogus:1", &spec, &err));
    EXPECT_FALSE(err.empty());
    err.clear();
    EXPECT_FALSE(parseFaultSpec("fn:notanumber", &spec, &err));
    EXPECT_FALSE(err.empty());
}

class FaultInjectorTest : public ::testing::Test
{
  protected:
    void TearDown() override { FaultInjector::instance().disarm(); }

    Function
    makeFunction()
    {
        Program program = compileTinyC(
            "int main() { int x = 3; if (x) { x = x + 1; } return x; }");
        return std::move(program.fn);
    }
};

TEST_F(FaultInjectorTest, FiresOnMatchingOccurrence)
{
    FaultSpec spec;
    spec.phase = "formation";
    spec.occurrence = 1;
    spec.kind = FaultSpec::Kind::Throw;
    FaultInjector &injector = FaultInjector::instance();
    injector.arm(spec);
    ASSERT_TRUE(injector.armed());

    Function fn = makeFunction();
    // Occurrence 0 does not fire; occurrence 1 throws.
    faultInjectionPoint("formation", fn);
    EXPECT_EQ(injector.firedCount(), 0u);
    EXPECT_THROW(faultInjectionPoint("formation", fn),
                 RecoverableError);
    EXPECT_EQ(injector.firedCount(), 1u);
    EXPECT_EQ(injector.lastSite(), "formation#1");
}

TEST_F(FaultInjectorTest, PhaseFilterSkipsOtherPhases)
{
    FaultSpec spec;
    spec.phase = "regalloc";
    FaultInjector::instance().arm(spec);

    Function fn = makeFunction();
    faultInjectionPoint("formation", fn);
    faultInjectionPoint("unroll", fn);
    EXPECT_EQ(FaultInjector::instance().firedCount(), 0u);
    EXPECT_THROW(faultInjectionPoint("regalloc", fn),
                 RecoverableError);
    EXPECT_EQ(FaultInjector::instance().firedCount(), 1u);
}

TEST_F(FaultInjectorTest, CorruptIrIsCaughtByVerifier)
{
    FaultSpec spec;
    spec.kind = FaultSpec::Kind::CorruptIr;
    FaultInjector::instance().arm(spec);

    Function fn = makeFunction();
    ASSERT_TRUE(verify(fn).empty());
    faultInjectionPoint("formation", fn);
    EXPECT_EQ(FaultInjector::instance().firedCount(), 1u);
    EXPECT_FALSE(verify(fn).empty())
        << "injected corruption must be verifier-detectable";
}

TEST_F(FaultInjectorTest, DisarmStopsFiring)
{
    FaultSpec spec;
    FaultInjector::instance().arm(spec);
    FaultInjector::instance().disarm();
    EXPECT_FALSE(FaultInjector::instance().armed());

    Function fn = makeFunction();
    faultInjectionPoint("formation", fn); // must not throw
    EXPECT_EQ(FaultInjector::instance().firedCount(), 0u);
}

} // namespace
} // namespace chf
