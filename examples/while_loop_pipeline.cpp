/**
 * @file
 * The paper's Figure 1 scenario: an outer loop with two inner *while*
 * loops that typically iterate three times. For-loop unrolling cannot
 * help (the trip counts are data dependent), so only head duplication
 * -- peeling and unrolling integrated with if-conversion -- can build
 * large hyperblocks. This example walks the CFG through each pipeline
 * and reports how head duplication changes the outcome.
 *
 * Run: ./while_loop_pipeline
 */

#include <cstdio>

#include "ir/printer.h"
#include "pipeline/session.h"
#include "sim/functional_sim.h"
#include "sim/timing_sim.h"

using namespace chf;

namespace {

Program
cloneProgram(const Program &program)
{
    Program copy;
    copy.fn = program.fn.clone();
    copy.memory = program.memory;
    copy.defaultArgs = program.defaultArgs;
    return copy;
}

} // namespace

int
main()
{
    // Figure 1's CFG shape: A; loop { CD while-loop; E; FG while-loop;
    // H } I -- each inner while loop typically runs ~3 iterations.
    const char *source = R"(
int trips[512];
int work[512];
int main() {
  int seed = 19;
  for (int i = 0; i < 512; i += 1) {
    seed = (seed * 1103515245 + 12345) % 8192;
    trips[i] = 2 + seed % 3;            // typically ~3
    work[i] = seed % 100;
  }
  int acc = 0;
  for (int outer = 0; outer < 512; outer += 1) {   // block A/B
    int j = 0;
    while (j < trips[outer]) {                     // blocks C,D
      acc += work[outer] + j;
      j += 1;
    }
    acc = acc % 100003;                            // block E
    int k = 0;
    while (k < trips[(outer + 7) % 512]) {         // blocks F,G
      acc += (work[outer] * k) % 17;
      k += 1;
    }
  }
  return acc;                                      // block I
}
)";

    Program base = Session::frontend(source);
    ProfileData profile = prepareProgram(base);

    std::printf("Figure 1 scenario: while loops with ~3 mean trips\n");
    std::printf("baseline CFG (%zu blocks):\n%s\n", base.fn.numBlocks(),
                cfgToString(base.fn).c_str());

    FuncSimResult oracle = runFunctional(base);
    TimingResult bb_cycles = runTiming(base);

    const std::pair<const char *, Pipeline> configs[] = {
        {"UPIO   (unroll/peel before if-conversion)", Pipeline::UPIO},
        {"IUPO   (if-convert, then discrete unroll/peel)",
         Pipeline::IUPO},
        {"(IUP)O (convergent, scalar opts at the end)",
         Pipeline::IUP_O},
        {"(IUPO) (fully convergent, Figure 1d)", Pipeline::IUPO_fused},
    };

    // One session unit per pipeline, compiled as a batch.
    Session session;
    for (const auto &[label, pipeline] : configs) {
        session.addProgram(cloneProgram(base), profile, label,
                           SessionOptions().withPipeline(pipeline));
    }
    SessionResult compiled = session.compile();

    for (size_t unit = 0; unit < session.size(); ++unit) {
        const char *label = configs[unit].first;
        const Program &program = session.program(unit);
        const FunctionResult &result = compiled.functions[unit];

        FuncSimResult run = runFunctional(program);
        TimingResult cycles = runTiming(program);
        if (run.returnValue != oracle.returnValue) {
            std::printf("BUG: %s changed the result!\n", label);
            return 1;
        }

        std::printf("%-48s blocks %3zu  merges %3lld  u/p %lld/%lld  "
                    "cycles %+6.1f%%\n",
                    label, program.fn.numBlocks(),
                    static_cast<long long>(
                        result.stats.get("blocksMerged")),
                    static_cast<long long>(
                        result.stats.get("unrolledIterations")),
                    static_cast<long long>(
                        result.stats.get("peeledIterations")),
                    100.0 *
                        (static_cast<double>(bb_cycles.cycles) -
                         static_cast<double>(cycles.cycles)) /
                        static_cast<double>(bb_cycles.cycles));
    }

    std::printf("\nHead duplication (the u/p columns) is what lets the "
                "convergent pipelines fold the low-trip while loops "
                "into their surrounding hyperblocks, as in Figure 1d "
                "of the paper.\n");
    return 0;
}
