/**
 * @file
 * Functional (architecture-timing-free) simulator.
 *
 * Executes a program block by block, evaluating predicates, and collects
 * the counts the paper's fast simulator provides: blocks executed
 * (Table 3's metric), instructions fetched/executed, per-branch fire
 * counts (the profile), and optionally the full block trace (for trip
 * histograms). It also serves as the semantic oracle: transforms must
 * leave the return value and final memory bit-identical.
 *
 * It asserts the EDGE block invariant that exactly one branch (Br or
 * Ret) fires per block execution.
 */

#ifndef CHF_SIM_FUNCTIONAL_SIM_H
#define CHF_SIM_FUNCTIONAL_SIM_H

#include <cstdint>
#include <vector>

#include "analysis/profile.h"
#include "ir/program.h"

namespace chf {

/** Options controlling a functional run. */
struct FuncSimOptions
{
    /** Abort (fatal) after this many block executions. */
    uint64_t maxBlocks = 200'000'000;

    /** Record the executed-block trace (needed for trip histograms). */
    bool recordTrace = false;

    /** Budget overrun throws RecoverableError instead of fatal. The
     *  fuzz harness uses this so a runaway generated program is a
     *  reportable (and shrinkable) failure, not process death. */
    bool throwOnBudget = false;
};

/** Result of a functional run. */
struct FuncSimResult
{
    int64_t returnValue = 0;
    uint64_t blocksExecuted = 0;

    /** Static block sizes summed over executions (fetch work). */
    uint64_t instsFetched = 0;

    /** Instructions whose predicate evaluated true. */
    uint64_t instsExecuted = 0;

    /** Final memory image after the run. */
    MemoryImage memory;

    /** Hash of the final memory (cheap equality check). */
    uint64_t memoryHash = 0;

    /** Executions per block id. */
    std::vector<uint64_t> blockCounts;

    /** Fire counts per block per instruction index (branches only). */
    std::vector<std::vector<uint64_t>> branchFires;

    /** Edge counts. */
    EdgeProfile edges;

    /** Executed block ids in order (only if recordTrace). */
    std::vector<BlockId> trace;
};

/**
 * Run @p program with @p args (falls back to program.defaultArgs).
 * Registers start at zero except arguments.
 */
FuncSimResult runFunctional(const Program &program,
                            const std::vector<int64_t> &args = {},
                            const FuncSimOptions &options = {});

/**
 * Profile @p program: run it functionally, annotate branch frequencies
 * onto the function, and return the full profile bundle (edge counts +
 * trip histograms).
 */
ProfileData profileProgram(Program &program,
                           const std::vector<int64_t> &args = {});

} // namespace chf

#endif // CHF_SIM_FUNCTIONAL_SIM_H
