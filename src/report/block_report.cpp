#include "report/block_report.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace chf {

BlockReport
analyzeBlocks(const Function &fn, const TargetModel &target,
              const FuncSimResult *run)
{
    BlockReport report;
    size_t buckets = target.maxInsts / 16 + 1;
    report.sizeHistogram.assign(buckets, 0);

    double static_fill = 0.0;
    size_t predicated = 0;

    double weighted_fill = 0.0;
    double weight = 0.0;

    for (BlockId id : fn.blockIds()) {
        const BasicBlock *bb = fn.block(id);
        size_t size = bb->size();
        ++report.blocks;
        report.totalInsts += size;
        report.maxBlockSize = std::max(report.maxBlockSize, size);

        double fill = std::min(
            1.0, static_cast<double>(size) /
                     static_cast<double>(target.maxInsts));
        static_fill += fill;
        size_t bucket = std::min(buckets - 1, size / 16);
        report.sizeHistogram[bucket]++;

        for (const auto &inst : bb->insts) {
            if (inst.pred.valid())
                ++predicated;
        }

        if (run && id < run->blockCounts.size() &&
            run->blockCounts[id] > 0) {
            double w = static_cast<double>(run->blockCounts[id]);
            weighted_fill += fill * w;
            weight += w;
        }
    }

    if (report.blocks > 0) {
        report.staticUtilization = static_fill / report.blocks;
        report.meanBlockSize =
            static_cast<double>(report.totalInsts) / report.blocks;
        report.predicatedFraction =
            report.totalInsts == 0
                ? 0.0
                : static_cast<double>(predicated) / report.totalInsts;
    }
    if (weight > 0.0)
        report.dynamicUtilization = weighted_fill / weight;
    if (run && run->instsFetched > 0) {
        report.usefulFetchFraction =
            static_cast<double>(run->instsExecuted) /
            static_cast<double>(run->instsFetched);
    }
    return report;
}

std::string
toString(const BlockReport &report, const TargetModel &target)
{
    std::ostringstream os;
    os << "blocks " << report.blocks << ", insts " << report.totalInsts
       << ", mean size " << static_cast<int>(report.meanBlockSize)
       << "/" << target.maxInsts << ", max "
       << report.maxBlockSize << "\n";
    os << "static fill " << static_cast<int>(
              report.staticUtilization * 100)
       << "%, dynamic fill "
       << static_cast<int>(report.dynamicUtilization * 100)
       << "%, predicated "
       << static_cast<int>(report.predicatedFraction * 100)
       << "%, useful fetch "
       << static_cast<int>(report.usefulFetchFraction * 100) << "%\n";
    os << "size histogram (x16):";
    for (size_t i = 0; i < report.sizeHistogram.size(); ++i)
        os << " " << report.sizeHistogram[i];
    os << "\n";
    return os.str();
}

std::string
timingSummary(const StatSet &stats)
{
    std::ostringstream os;
    bool any_time = false;
    for (const auto &[name, value] : stats.entries()) {
        if (name.rfind("us", 0) == 0 && name.size() > 2 &&
            std::isupper(static_cast<unsigned char>(name[2]))) {
            if (!any_time)
                os << "pass timing:";
            any_time = true;
            os << " " << name.substr(2) << "=" << value << "us";
        }
    }
    if (any_time)
        os << "\n";
    bool any_cache = false;
    for (const auto &[name, value] : stats.entries()) {
        if (name.rfind("analysis", 0) == 0) {
            if (!any_cache)
                os << "analysis cache:";
            any_cache = true;
            os << " " << name.substr(8) << "=" << value;
        }
    }
    if (any_cache)
        os << "\n";
    return os.str();
}

} // namespace chf
