/**
 * @file
 * TRIPS-style assembly writer.
 *
 * An EDGE program "explicitly encode[s] dependences in a static
 * dataflow graph, using target form in source instructions rather than
 * writing to shared registers" (paper §2). This writer emits each
 * block in that target form:
 *
 *   .bbegin main$bb5          ; block header
 *     R[0]  read  $g17 > N[2,op0] N[5,op0]   ; register-file read
 *     N[2]  tlt   #1024 > N[3,pred]
 *     N[3]  bro_t main$bb5                   ; predicated branch
 *     N[5]  addi  #1 > W[0]
 *     W[0]  write $g17                       ; register-file write
 *   .bend
 *
 * Sources never name their inputs; producers name their consumers
 * (instruction id + operand slot). Upward-exposed registers become
 * read instructions, live-out writes become write instructions, so the
 * printed block shows exactly the architectural inputs/outputs the
 * TRIPS block format encodes. Run after fanout insertion if you want
 * every producer to have at most two targets.
 */

#ifndef CHF_BACKEND_ASM_WRITER_H
#define CHF_BACKEND_ASM_WRITER_H

#include <string>

#include "ir/function.h"

namespace chf {

/** Emit one block in target form. */
std::string writeBlockAsm(const Function &fn, const BasicBlock &bb);

/** Emit the whole function, entry block first. */
std::string writeFunctionAsm(const Function &fn);

} // namespace chf

#endif // CHF_BACKEND_ASM_WRITER_H
