/**
 * @file
 * Spatial instruction scheduler: greedy placement of each block's
 * instructions onto the 4x4 grid of execution tiles (in the spirit of
 * SPDI scheduling for EDGE targets). The placement feeds the timing
 * model, which charges one cycle per Manhattan hop for every
 * producer-to-consumer operand transfer and serializes issue per tile.
 */

#ifndef CHF_BACKEND_SCHEDULER_H
#define CHF_BACKEND_SCHEDULER_H

#include <map>
#include <vector>

#include "ir/function.h"

namespace chf {

/** Grid configuration. */
struct SchedulerOptions
{
    int gridWidth = 4;
    int gridHeight = 4;
    size_t slotsPerTile = 8; ///< 128 insts / 16 tiles

    int numTiles() const { return gridWidth * gridHeight; }
};

/** Per-block tile assignment (index parallel to the block's insts). */
using Placement = std::vector<int>;

/** Manhattan distance between tiles in the grid. */
int tileDistance(int a, int b, const SchedulerOptions &options);

/** Place one block's instructions. */
Placement scheduleBlock(const BasicBlock &bb,
                        const SchedulerOptions &options = {});

/** Place every block. */
std::map<BlockId, Placement> scheduleFunction(
    const Function &fn, const SchedulerOptions &options = {});

} // namespace chf

#endif // CHF_BACKEND_SCHEDULER_H
