#include "support/diagnostics.h"

#include <algorithm>

namespace chf {

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

std::string
Diagnostic::toString() const
{
    std::ostringstream os;
    os << severityName(severity) << ": ";
    if (!phase.empty())
        os << phase << ": ";
    if (!function.empty())
        os << "fn '" << function << "': ";
    if (loc.valid()) {
        os << loc.line;
        if (loc.column > 0)
            os << ":" << loc.column;
        os << ": ";
    }
    if (block != kNoBlock)
        os << "bb" << block << ": ";
    os << message;
    return os.str();
}

bool
diagnosticOrder(const Diagnostic &a, const Diagnostic &b)
{
    if (a.functionIndex != b.functionIndex)
        return a.functionIndex < b.functionIndex;
    if (a.phase != b.phase)
        return a.phase < b.phase;
    if (a.loc.line != b.loc.line)
        return a.loc.line < b.loc.line;
    if (a.loc.column != b.loc.column)
        return a.loc.column < b.loc.column;
    if (a.block != b.block)
        return a.block < b.block;
    return a.sequence < b.sequence;
}

void
DiagnosticEngine::report(Diagnostic diag)
{
    diag.sequence = static_cast<uint32_t>(diags.size());
    diags.push_back(std::move(diag));
}

void
DiagnosticEngine::error(std::string phase, std::string message)
{
    report(Diagnostic::error(std::move(phase), std::move(message)));
}

void
DiagnosticEngine::note(std::string phase, std::string message)
{
    Diagnostic d = Diagnostic::error(std::move(phase), std::move(message));
    d.severity = Severity::Note;
    report(std::move(d));
}

size_t
DiagnosticEngine::count(Severity severity) const
{
    return static_cast<size_t>(
        std::count_if(diags.begin(), diags.end(),
                      [&](const Diagnostic &d) {
                          return d.severity == severity;
                      }));
}

void
DiagnosticEngine::append(const DiagnosticEngine &other, int function_index)
{
    for (const Diagnostic &d : other.diagnostics()) {
        Diagnostic copy = d;
        if (function_index >= 0)
            copy.functionIndex = function_index;
        report(std::move(copy));
    }
}

void
DiagnosticEngine::sortStable()
{
    std::stable_sort(diags.begin(), diags.end(), diagnosticOrder);
}

bool
DiagnosticEngine::hasPhase(const std::string &phase) const
{
    return std::any_of(diags.begin(), diags.end(),
                       [&](const Diagnostic &d) {
                           return d.phase == phase;
                       });
}

std::string
DiagnosticEngine::toString() const
{
    std::string out;
    for (const Diagnostic &d : diags) {
        out += d.toString();
        out += '\n';
    }
    return out;
}

void
DiagnosticEngine::print(std::FILE *out) const
{
    for (const Diagnostic &d : diags)
        std::fprintf(out, "%s\n", d.toString().c_str());
}

void
throwInputError(std::string phase, SourceLoc loc, std::string message)
{
    throw RecoverableError(
        Diagnostic::inputError(std::move(phase), loc, std::move(message)));
}

} // namespace chf
