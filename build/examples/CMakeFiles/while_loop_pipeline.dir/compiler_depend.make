# Empty compiler generated dependencies file for while_loop_pipeline.
# This may be replaced when dependencies are built.
