/**
 * @file
 * Next-block predictor.
 *
 * TRIPS fetches speculatively using next-block prediction; a
 * misprediction flushes the speculative blocks and refetches after the
 * branch resolves (paper §2, §5 "Branch predictability"). This model is
 * a gshare-style target predictor: a table indexed by the current block
 * id XOR a global history of recent successors, each entry holding a
 * predicted target with 2-bit hysteresis.
 */

#ifndef CHF_SIM_PREDICTOR_H
#define CHF_SIM_PREDICTOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ir/value.h"

namespace chf {

/** gshare-style next-block target predictor. */
class NextBlockPredictor
{
  public:
    explicit NextBlockPredictor(unsigned table_bits = 12);

    /** Predicted successor of @p current; kNoBlock when cold. */
    BlockId predict(BlockId current) const;

    /** Train with the actual successor and advance the history. */
    void update(BlockId current, BlockId actual);

    uint64_t lookups() const { return numLookups; }

  private:
    size_t index(BlockId current) const;

    struct Entry
    {
        BlockId target = kNoBlock;
        uint8_t confidence = 0; ///< 0..3
    };

    std::vector<Entry> table;
    size_t mask;
    uint64_t history = 0;
    mutable uint64_t numLookups = 0;
};

} // namespace chf

#endif // CHF_SIM_PREDICTOR_H
