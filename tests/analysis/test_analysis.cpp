/**
 * @file
 * Analysis tests: dominators, natural loops, liveness, and profiles on
 * hand-built CFGs with known answers.
 */

#include <gtest/gtest.h>

#include "analysis/dominators.h"
#include "analysis/liveness.h"
#include "analysis/loops.h"
#include "analysis/profile.h"
#include "frontend/lowering.h"
#include "ir/builder.h"
#include "sim/functional_sim.h"

namespace chf {
namespace {

/** entry -> head -> (body -> head) | exit; a classic while loop. */
Function
makeLoop()
{
    Function fn;
    IRBuilder b(fn);
    BlockId entry = b.makeBlock("entry");
    BlockId head = b.makeBlock("head");
    BlockId body = b.makeBlock("body");
    BlockId exit = b.makeBlock("exit");
    fn.setEntry(entry);

    Vreg i = fn.newVreg();
    b.setBlock(entry);
    b.movTo(i, IRBuilder::imm(0));
    b.br(head);
    b.setBlock(head);
    Vreg t = b.binary(Opcode::Tlt, IRBuilder::r(i), IRBuilder::imm(10));
    b.brCond(t, body, exit);
    b.setBlock(body);
    Vreg next = b.add(IRBuilder::r(i), IRBuilder::imm(1));
    b.movTo(i, IRBuilder::r(next));
    b.br(head);
    b.setBlock(exit);
    b.ret(IRBuilder::r(i));
    return fn;
}

TEST(Dominators, Diamond)
{
    Function fn;
    IRBuilder b(fn);
    BlockId entry = b.makeBlock();
    BlockId t = b.makeBlock();
    BlockId e = b.makeBlock();
    BlockId join = b.makeBlock();
    fn.setEntry(entry);
    b.setBlock(entry);
    Vreg c = b.constant(1);
    b.brCond(c, t, e);
    b.setBlock(t);
    b.br(join);
    b.setBlock(e);
    b.br(join);
    b.setBlock(join);
    b.ret();

    DominatorTree dom(fn);
    EXPECT_EQ(dom.idom(entry), kNoBlock);
    EXPECT_EQ(dom.idom(t), entry);
    EXPECT_EQ(dom.idom(e), entry);
    EXPECT_EQ(dom.idom(join), entry); // neither arm dominates the join
    EXPECT_TRUE(dom.dominates(entry, join));
    EXPECT_TRUE(dom.dominates(join, join));
    EXPECT_FALSE(dom.dominates(t, join));
    auto children = dom.children(entry);
    EXPECT_EQ(children.size(), 3u);
}

TEST(Dominators, LoopHeaderDominatesBody)
{
    Function fn = makeLoop();
    DominatorTree dom(fn);
    EXPECT_TRUE(dom.dominates(1, 2)); // head dominates body
    EXPECT_TRUE(dom.dominates(1, 3)); // and the exit
    EXPECT_FALSE(dom.dominates(2, 1));
}

TEST(Dominators, UnreachableBlocks)
{
    Function fn = makeLoop();
    IRBuilder b(fn);
    BlockId orphan = b.makeBlock();
    b.setBlock(orphan);
    b.ret();
    DominatorTree dom(fn);
    EXPECT_FALSE(dom.reachable(orphan));
    EXPECT_TRUE(dom.reachable(fn.entry()));
}

TEST(Loops, WhileLoopShape)
{
    Function fn = makeLoop();
    LoopInfo loops(fn);
    ASSERT_EQ(loops.loops().size(), 1u);
    const Loop &loop = loops.loops()[0];
    EXPECT_EQ(loop.header, 1u);
    EXPECT_EQ(loop.blocks, (std::vector<BlockId>{1, 2}));
    EXPECT_EQ(loop.latches, (std::vector<BlockId>{2}));
    EXPECT_TRUE(loops.isBackEdge(2, 1));
    EXPECT_FALSE(loops.isBackEdge(1, 2));
    EXPECT_TRUE(loops.isLoopHeader(1));
    EXPECT_FALSE(loops.isLoopHeader(2));
    EXPECT_EQ(loops.depth(2), 1);
    EXPECT_EQ(loops.depth(3), 0);
}

TEST(Loops, SelfLoop)
{
    Function fn;
    IRBuilder b(fn);
    BlockId entry = b.makeBlock();
    BlockId body = b.makeBlock();
    BlockId exit = b.makeBlock();
    fn.setEntry(entry);
    Vreg i = fn.newVreg();
    b.setBlock(entry);
    b.movTo(i, IRBuilder::imm(0));
    b.br(body);
    b.setBlock(body);
    Vreg n = b.add(IRBuilder::r(i), IRBuilder::imm(1));
    b.movTo(i, IRBuilder::r(n));
    Vreg t = b.binary(Opcode::Tlt, IRBuilder::r(i), IRBuilder::imm(5));
    b.brCond(t, body, exit);
    b.setBlock(exit);
    b.ret();

    LoopInfo loops(fn);
    ASSERT_EQ(loops.loops().size(), 1u);
    EXPECT_EQ(loops.loops()[0].header, body);
    EXPECT_TRUE(loops.isBackEdge(body, body));
}

TEST(Loops, NestedDepth)
{
    Program p = compileTinyC(R"(
int main() {
  int acc = 0;
  for (int i = 0; i < 3; i += 1) {
    for (int j = 0; j < 3; j += 1) { acc += i * j; }
  }
  return acc;
}
)");
    LoopInfo loops(p.fn);
    EXPECT_EQ(loops.loops().size(), 2u);
    int max_depth = 0;
    for (const Loop &loop : loops.loops())
        max_depth = std::max(max_depth, loop.depth);
    EXPECT_EQ(max_depth, 2);
}

TEST(Liveness, StraightLine)
{
    Function fn;
    IRBuilder b(fn);
    BlockId a = b.makeBlock();
    BlockId c = b.makeBlock();
    fn.setEntry(a);
    Vreg x = fn.newVreg();
    b.setBlock(a);
    b.movTo(x, IRBuilder::imm(42));
    b.br(c);
    b.setBlock(c);
    b.ret(IRBuilder::r(x));

    Liveness live(fn);
    EXPECT_TRUE(live.liveOut(a).test(x));
    EXPECT_TRUE(live.liveIn(c).test(x));
    EXPECT_FALSE(live.liveIn(a).test(x)); // killed by the def
}

TEST(Liveness, PredicatedWriteDoesNotKill)
{
    Function fn;
    IRBuilder b(fn);
    BlockId a = b.makeBlock();
    BlockId c = b.makeBlock();
    fn.setEntry(a);
    Vreg x = fn.newVreg();
    Vreg p = fn.newVreg();
    b.setBlock(a);
    Instruction mov =
        Instruction::unary(Opcode::Mov, x, Operand::makeImm(1));
    mov.pred = Predicate::onReg(p, true);
    b.emit(mov);
    b.br(c);
    b.setBlock(c);
    b.ret(IRBuilder::r(x));

    Liveness live(fn);
    // x may flow through when p is false, so it is live into a.
    EXPECT_TRUE(live.liveIn(a).test(x));
    EXPECT_TRUE(live.liveIn(a).test(p));
}

TEST(Liveness, LoopCarried)
{
    Function fn = makeLoop();
    Liveness live(fn);
    Vreg i = 0; // first vreg is the induction variable
    EXPECT_TRUE(live.liveIn(1).test(i));  // head reads it
    EXPECT_TRUE(live.liveOut(2).test(i)); // body carries it back
}

TEST(Profile, EdgeCountsAndBlockCounts)
{
    EdgeProfile profile;
    profile.addEdge(0, 1, 10);
    profile.addEdge(2, 1, 5);
    profile.addEdge(1, 2, 15);
    profile.addEntry(0);
    EXPECT_EQ(profile.edgeCount(0, 1), 10u);
    EXPECT_EQ(profile.edgeCount(1, 0), 0u);
    EXPECT_EQ(profile.blockCount(1), 15u);
    EXPECT_EQ(profile.blockCount(0), 1u);
}

TEST(Profile, TripQuantile)
{
    TripCountHistograms trips;
    for (int i = 0; i < 60; ++i)
        trips.record(7, 2);
    for (int i = 0; i < 40; ++i)
        trips.record(7, 10);
    EXPECT_NEAR(trips.meanTrips(7), 5.2, 0.01);
    EXPECT_EQ(trips.tripQuantile(7, 0.5), 2u);
    EXPECT_EQ(trips.tripQuantile(7, 0.95), 10u);
    EXPECT_FALSE(trips.has(8));
    EXPECT_EQ(trips.meanTrips(8), 0.0);
}

TEST(Profile, AnnotationRoundTrip)
{
    Program p = compileTinyC(R"(
int main() {
  int s = 0;
  for (int i = 0; i < 5; i += 1) { s += i; }
  return s;
}
)");
    ProfileData profile = profileProgram(p);
    (void)profile;
    // Every reachable branch got a frequency; entry block frequency
    // reflects one run.
    double entry_freq = p.fn.block(p.fn.entry())->frequency();
    EXPECT_DOUBLE_EQ(entry_freq, 1.0);
}

} // namespace
} // namespace chf
