#include "workloads/generator.h"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <map>
#include <sstream>

#include "analysis/loops.h"
#include "frontend/lowering.h"
#include "frontend/parser.h"
#include "support/random.h"

namespace chf {

namespace {

int
clampInt(int v, int lo, int hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/**
 * Emits one TinyC translation unit from a shape and an Rng. All
 * formatting is integer-only ostringstream output, so the bytes are a
 * pure function of the draw sequence.
 */
class Emitter
{
  public:
    Emitter(uint64_t seed, const GeneratorShape &shape_in)
        : rng(seed), shape(shape_in)
    {
    }

    std::string
    emitProgram()
    {
        out << "int mem[" << kMemWords << "];\n";
        out << "int tab[" << kTabWords << "] = {";
        for (int i = 0; i < kTabWords; ++i)
            out << (i ? ", " : "") << rng.range(-99, 99);
        out << "};\n";
        out << "int gseed = " << rng.range(1, 997) << ";\n\n";

        // Recursion-unfolding chain (Frühwirth): uK calls u{K-1}, the
        // shape a self-recursive accumulator takes after unfolding.
        for (int k = 0; k < shape.unfoldDepth; ++k)
            emitUnfoldLevel(k);

        // General helpers; hK may call hJ (J < K) and the chain top,
        // so the inline nesting stays acyclic and depth-bounded.
        for (int k = 0; k < shape.helperFunctions; ++k)
            emitHelper(k);

        emitMain();
        return out.str();
    }

  private:
    static constexpr int kMemWords = 256;
    static constexpr int kTabWords = 16;

    /** Emission bounds (see emitStmt/emitLoop). Sized so one program
     *  compiles through the whole pipeline matrix in well under a
     *  second, while big shapes still dwarf the hand-written suite.
     *  Budgets are charged in POST-INLINE statements: a call costs its
     *  callee's recorded inlined size, not 1 (TinyC inlines every
     *  call, so flat-charging lets helper chains compound the real
     *  compile cost exponentially past the budget). */
    static constexpr int kHelperStmtBudget = 24;
    static constexpr int kMainBaseStmtBudget = 16;
    static constexpr int kRegionStmtBudget = 10;
    static constexpr int64_t kMaxTripProduct = 2048;

    // ----- function-scope state -----

    void
    beginFunction()
    {
        vars.clear();
        inductionVars.clear();
        loopIsFor.clear();
        localCounter = 0;
        loopCounter = 0;
        selectorCounter = 0;
        tripProduct = 1;
        fnCost = 0;
    }

    std::string
    pad(int indent) const
    {
        return std::string(static_cast<size_t>(indent) * 2, ' ');
    }

    const std::string &
    var()
    {
        return vars[rng.below(vars.size())];
    }

    std::string
    readVar()
    {
        size_t total = vars.size() + inductionVars.size();
        size_t pick = rng.below(total);
        return pick < vars.size() ? vars[pick]
                                  : inductionVars[pick - vars.size()];
    }

    // ----- expressions -----
    //
    // UB guards: `*` operands masked to |v| < 8191, shift amounts
    // masked small, every variable/store write masked to |v| < 2^20.
    // With exprDepth <= 4 no intermediate can approach INT64 limits.

    std::string
    leaf()
    {
        switch (rng.below(6)) {
          case 0:
            return std::to_string(rng.range(-9, 99));
          case 1:
          case 2:
            return readVar();
          case 3:
            return "mem[((" + readVar() + ") % " +
                   std::to_string(kMemWords) + " + " +
                   std::to_string(kMemWords) + ") % " +
                   std::to_string(kMemWords) + "]";
          case 4:
            return "tab[((" + readVar() + ") % " +
                   std::to_string(kTabWords) + " + " +
                   std::to_string(kTabWords) + ") % " +
                   std::to_string(kTabWords) + "]";
          default:
            return "gseed";
        }
    }

    std::string
    expr(int depth)
    {
        if (depth <= 0 || rng.chance(1, 3))
            return leaf();
        if (rng.chance(1, 6)) { // unary
            static const char *const ops[] = {"-", "~", "!"};
            return std::string(ops[rng.below(3)]) + "(" +
                   expr(depth - 1) + ")";
        }
        if (rng.chance(1, 10)) { // ternary
            return "((" + expr(depth - 1) + ") ? (" + expr(depth - 1) +
                   ") : (" + expr(depth - 1) + "))";
        }
        static const char *const ops[] = {
            "+",  "-",  "*",  "/",  "%",  "&",  "|",  "^",  "<<",
            ">>", "<",  "<=", ">",  ">=", "==", "!=", "&&", "||"};
        std::string op = ops[rng.below(18)];
        std::string a = expr(depth - 1);
        std::string b = expr(depth - 1);
        if (op == "*")
            return "(((" + a + ") % 8191) * ((" + b + ") % 8191))";
        if (op == "<<")
            return "((" + a + ") << ((" + b + ") & 7))";
        if (op == ">>")
            return "((" + a + ") >> ((" + b + ") & 15))";
        return "((" + a + ") " + op + " (" + b + "))";
    }

    /** In-bounds mem index expression. */
    std::string
    memIndex()
    {
        return "((" + expr(1) + ") % " + std::to_string(kMemWords) +
               " + " + std::to_string(kMemWords) + ") % " +
               std::to_string(kMemWords);
    }

    // ----- statements -----

    void
    emitAssign(int indent)
    {
        out << pad(indent) << var() << " = (" << expr(shape.exprDepth)
            << ") % 1048576;\n";
    }

    void
    emitCompound(int indent)
    {
        out << pad(indent) << var() << (rng.chance(1, 2) ? " += " : " -= ")
            << "(" << expr(shape.exprDepth - 1) << ") % 4096;\n";
    }

    void
    emitStore(int indent)
    {
        out << pad(indent) << "mem[" << memIndex() << "] = ("
            << expr(shape.exprDepth - 1) << ") % 1048576;\n";
    }

    void
    emitCallAssign(int indent)
    {
        // A call is charged at the callee's recorded post-inline size
        // (and capped per function by callBudget): TinyC inlines every
        // call, so charging it as one statement would let the helper
        // chain compound into exponential post-inline size that blows
        // the full-matrix compile budget.
        --callBudget;
        const std::string &callee =
            callables[rng.below(callables.size())];
        int cost = inlineCost[callee];
        stmtBudget -= cost;
        fnCost += cost;
        out << pad(indent) << var() << " = (" << callee << "("
            << expr(1) << ", " << expr(1) << ")) % 1048576;\n";
    }

    void
    emitBranchShape(int depth, int indent)
    {
        int sw = shape.switchPct;
        int di = sw + shape.diamondPct;
        int tr = di + shape.trianglePct;
        int total = tr + shape.hammockPct;
        if (total <= 0) {
            emitTriangle(depth, indent);
            return;
        }
        int draw = static_cast<int>(rng.below(
            static_cast<uint64_t>(total)));
        if (draw < sw)
            emitSwitchChain(depth, indent);
        else if (draw < di)
            emitDiamond(depth, indent);
        else if (draw < tr)
            emitTriangle(depth, indent);
        else
            emitHammock(depth, indent);
    }

    /** Dense if/else-if compare chain on one selector: what a switch
     *  lowers to, and the branch-melding suite's favourite prey. */
    void
    emitSwitchChain(int depth, int indent)
    {
        std::string sel = "s" + std::to_string(selectorCounter++);
        int cases = std::max(2, shape.switchCases);
        out << pad(indent) << "int " << sel << " = ((" << expr(2)
            << ") % " << cases << " + " << cases << ") % " << cases
            << ";\n";
        vars.push_back(sel);
        for (int c = 0; c < cases; ++c) {
            if (c == 0)
                out << pad(indent) << "if (" << sel << " == 0) {\n";
            else
                out << " else if (" << sel << " == " << c << ") {\n";
            emitBlock(depth - 1, indent + 1);
            out << pad(indent) << "}";
        }
        if (rng.chance(2, 3)) {
            out << " else {\n";
            emitBlock(depth - 1, indent + 1);
            out << pad(indent) << "}";
        }
        out << "\n";
    }

    void
    emitDiamond(int depth, int indent)
    {
        if (rng.chance(static_cast<uint64_t>(shape.meldPct), 100)) {
            emitMeldedDiamond(indent);
            return;
        }
        out << pad(indent) << "if (" << expr(2) << ") {\n";
        emitBlock(depth - 1, indent + 1);
        out << pad(indent) << "} else {\n";
        emitBlock(depth - 1, indent + 1);
        out << pad(indent) << "}\n";
    }

    /** Both arms run the same operation with different constants —
     *  the meldable pattern of "Eliminate Branches by Melding IR
     *  Instructions". */
    void
    emitMeldedDiamond(int indent)
    {
        static const char *const ops[] = {"+", "-", "^", "&", "|"};
        std::string op = ops[rng.below(5)];
        std::string dst = var();
        std::string src = readVar();
        int64_t k1 = rng.range(1, 64);
        int64_t k2 = rng.range(1, 64);
        out << pad(indent) << "if (" << expr(2) << ") { " << dst
            << " = ((" << src << ") " << op << " " << k1
            << ") % 1048576; } else { " << dst << " = ((" << src
            << ") " << op << " " << k2 << ") % 1048576; }\n";
    }

    void
    emitTriangle(int depth, int indent)
    {
        out << pad(indent) << "if (" << expr(2) << ") {\n";
        emitBlock(depth - 1, indent + 1);
        out << pad(indent) << "}\n";
    }

    /** Single-entry single-exit region with internal control flow in
     *  one arm, joined by a store everyone passes through. */
    void
    emitHammock(int depth, int indent)
    {
        out << pad(indent) << "if (" << expr(2) << ") {\n";
        if (depth >= 2)
            emitBranchShapeInner(depth - 1, indent + 1);
        emitBlock(depth - 1, indent + 1);
        out << pad(indent) << "} else {\n";
        emitBlock(depth - 1, indent + 1);
        out << pad(indent) << "}\n";
        emitStore(indent);
    }

    /** A nested branch that never recurses back into hammocks. */
    void
    emitBranchShapeInner(int depth, int indent)
    {
        if (rng.chance(1, 2))
            emitTriangle(depth, indent);
        else
            emitDiamond(depth, indent);
    }

    void
    emitLoop(int depth, int indent)
    {
        // Cap the product of enclosing trip counts so a nest of
        // shape-limit loops cannot multiply into a simulation that
        // dwarfs the compile under test.
        int maxTrip = std::max(1, shape.maxLoopTrip);
        if (tripProduct * maxTrip > kMaxTripProduct) {
            maxTrip = static_cast<int>(
                std::max<int64_t>(1, kMaxTripProduct / tripProduct));
        }
        int trip = static_cast<int>(rng.range(1, maxTrip));
        int step = static_cast<int>(rng.range(1, 2));
        int64_t outerTripProduct = tripProduct;
        tripProduct = tripProduct * trip;
        switch (rng.below(3)) {
          case 0: { // for: step runs on continue, so continue is legal
            std::string iv = "i" + std::to_string(loopCounter++);
            out << pad(indent) << "for (int " << iv << " = 0; " << iv
                << " < " << trip * step << "; " << iv << " += " << step
                << ") {\n";
            inductionVars.push_back(iv);
            loopIsFor.push_back(true);
            emitBlock(depth - 1, indent + 1);
            loopIsFor.pop_back();
            inductionVars.pop_back();
            out << pad(indent) << "}\n";
            break;
          }
          case 1: { // while: increment last; continue never emitted
            std::string iv = "w" + std::to_string(loopCounter++);
            out << pad(indent) << "int " << iv << " = 0;\n";
            out << pad(indent) << "while (" << iv << " < "
                << trip * step << ") {\n";
            inductionVars.push_back(iv);
            loopIsFor.push_back(false);
            emitBlock(depth - 1, indent + 1);
            loopIsFor.pop_back();
            inductionVars.pop_back();
            out << pad(indent + 1) << iv << " += " << step << ";\n";
            out << pad(indent) << "}\n";
            break;
          }
          default: { // do-while (bottom-tested)
            std::string iv = "d" + std::to_string(loopCounter++);
            out << pad(indent) << "int " << iv << " = 0;\n";
            out << pad(indent) << "do {\n";
            inductionVars.push_back(iv);
            loopIsFor.push_back(false);
            emitBlock(depth - 1, indent + 1);
            loopIsFor.pop_back();
            inductionVars.pop_back();
            out << pad(indent + 1) << iv << " += " << step << ";\n";
            out << pad(indent) << "} while (" << iv << " < "
                << trip * step << ");\n";
            break;
          }
        }
        tripProduct = outerTripProduct;
    }

    void
    emitStmt(int depth, int indent)
    {
        // The statement budget hard-bounds a function's POST-INLINE
        // emission no matter how the shape multiplies nesting × width:
        // once spent, every pending slot degenerates to a leaf
        // statement and calls (charged at inlined cost, and the only
        // way to overdraw) are cut off. Keeps the compile cost of one
        // program in the fuzz-matrix range.
        --stmtBudget;
        ++fnCost;
        if (stmtBudget <= 0)
            depth = 0;
        bool inLoop = !loopIsFor.empty();
        bool canContinue = inLoop && loopIsFor.back();
        bool canCall =
            !callables.empty() && callBudget > 0 && stmtBudget > 0;
        // Rarely-taken early exits exercise side-exit handling.
        if (inLoop && rng.chance(1, 12)) {
            out << pad(indent) << "if (" << expr(1) << ") { "
                << (canContinue && rng.chance(1, 2) ? "continue"
                                                    : "break")
                << "; }\n";
            return;
        }
        if (depth <= 0) {
            switch (rng.below(canCall ? 4u : 3u)) {
              case 0: emitAssign(indent); return;
              case 1: emitCompound(indent); return;
              case 2: emitStore(indent); return;
              default: emitCallAssign(indent); return;
            }
        }
        switch (rng.below(canCall ? 9u : 8u)) {
          case 0:
          case 1: emitAssign(indent); return;
          case 2: emitCompound(indent); return;
          case 3: emitStore(indent); return;
          case 4:
          case 5: emitBranchShape(depth, indent); return;
          case 6:
          case 7: emitLoop(depth, indent); return;
          default: emitCallAssign(indent); return;
        }
    }

    /**
     * Statements between one `{` and its `}`. Lowering is
     * block-scoped, so declarations a child statement introduced
     * (switch selectors, loop counters) must leave the readable pool
     * when the brace closes.
     */
    void
    emitBlock(int depth, int indent)
    {
        size_t scopeMark = vars.size();
        int stmts = static_cast<int>(
            rng.range(1, std::max(1, shape.stmtsMax)));
        for (int i = 0; i < stmts; ++i)
            emitStmt(depth, indent);
        vars.resize(scopeMark);
    }

    // ----- functions -----

    void
    emitUnfoldLevel(int k)
    {
        beginFunction();
        std::string name = "u" + std::to_string(k);
        // Inlined size of the whole chain below this level: ~3
        // statements per level once every recursive call is expanded.
        inlineCost[name] =
            k == 0 ? 2 : inlineCost["u" + std::to_string(k - 1)] + 3;
        out << "int " << name << "(int n, int acc) {\n";
        if (k == 0) {
            out << "  return ((acc + (n ^ " << rng.range(1, 99)
                << ")) % 1048576);\n";
        } else {
            out << "  if (n <= 0) { return ((acc + "
                << rng.range(1, 99) << ") % 1048576); }\n";
            out << "  return u" << (k - 1)
                << "(n - 1, ((acc + ((n) % 8191) * ("
                << rng.range(2, 97) << ")) % 1048576));\n";
        }
        out << "}\n\n";
    }

    void
    emitHelper(int k)
    {
        beginFunction();
        // Callable from here: lower-numbered helpers and, from the
        // first helper only, the unfold-chain top (bounds the total
        // inline depth at helpers + unfold levels).
        callables.clear();
        for (int j = 0; j < k; ++j)
            callables.push_back("h" + std::to_string(j));
        if (k == 0 && shape.unfoldDepth > 0)
            callables.push_back(
                "u" + std::to_string(shape.unfoldDepth - 1));

        std::string name = "h" + std::to_string(k);
        out << "int " << name << "(int n, int x) {\n";
        out << "  int y = (n) % 65536;\n";
        out << "  int z = (x) % 65536;\n";
        vars = {"y", "z"};
        stmtBudget = kHelperStmtBudget;
        callBudget = 2;
        int depth = std::min(2, shape.maxDepth);
        emitBlock(depth, 1);
        out << "  return ((y ^ z) % 1048576);\n";
        out << "}\n\n";
        inlineCost[name] = fnCost + 4; // + prologue and return
    }

    void
    emitMain()
    {
        beginFunction();
        callables.clear();
        for (int j = 0; j < shape.helperFunctions; ++j)
            callables.push_back("h" + std::to_string(j));
        if (shape.unfoldDepth > 0)
            callables.push_back(
                "u" + std::to_string(shape.unfoldDepth - 1));

        out << "int main(";
        for (int p = 0; p < shape.mainParams; ++p)
            out << (p ? ", " : "") << "int a" << p;
        out << ") {\n";
        // Mask the caller-controlled inputs once so no expression over
        // them can overflow, whatever the CLI passes.
        for (int p = 0; p < shape.mainParams; ++p) {
            std::string v = "p" + std::to_string(p);
            out << "  int " << v << " = (a" << p << ") % 65536;\n";
            vars.push_back(v);
        }
        for (int i = 0; i < 3; ++i) {
            std::string v = "v" + std::to_string(localCounter++);
            out << "  int " << v << " = " << rng.range(-99, 99)
                << ";\n";
            vars.push_back(v);
        }
        if (shape.unfoldDepth > 0) {
            out << "  int vu = (u" << (shape.unfoldDepth - 1) << "("
                << rng.range(1, shape.unfoldDepth) << ", "
                << rng.range(0, 99) << ")) % 1048576;\n";
            vars.push_back("vu");
        }
        stmtBudget = kMainBaseStmtBudget +
                     kRegionStmtBudget * shape.regions;
        callBudget = 4;
        for (int r = 0; r < shape.regions; ++r)
            emitStmt(shape.maxDepth, 1);

        out << "  return ((";
        for (size_t i = 0; i < vars.size(); ++i) {
            if (i)
                out << (i % 2 ? " ^ " : " + ");
            out << vars[i];
        }
        out << " + mem[" << memIndex() << "]) % 1048576);\n";
        out << "}\n";
    }

    Rng rng;
    GeneratorShape shape;
    std::ostringstream out;

    std::vector<std::string> vars;
    std::vector<std::string> inductionVars;
    std::vector<bool> loopIsFor;
    std::vector<std::string> callables;
    int localCounter = 0;
    int loopCounter = 0;
    int selectorCounter = 0;
    int stmtBudget = 0;
    int callBudget = 0;
    int fnCost = 0;
    std::map<std::string, int> inlineCost;
    int64_t tripProduct = 1;
};

struct Preset
{
    const char *name;
    GeneratorShape shape;
};

std::vector<Preset>
makePresets()
{
    std::vector<Preset> presets;
    GeneratorShape d; // "default" is the struct's defaults

    presets.push_back({"default", d});

    GeneratorShape tiny = d;
    tiny.helperFunctions = 0;
    tiny.regions = 1;
    tiny.maxDepth = 2;
    tiny.exprDepth = 2;
    presets.push_back({"tiny", tiny});

    GeneratorShape deep = d;
    deep.maxDepth = 6;
    deep.regions = 2;
    deep.maxLoopTrip = 3;
    presets.push_back({"deep", deep});

    GeneratorShape wide = d;
    wide.regions = 8;
    wide.maxDepth = 2;
    presets.push_back({"wide", wide});

    GeneratorShape switchy = d;
    switchy.switchPct = 70;
    switchy.diamondPct = 10;
    switchy.trianglePct = 10;
    switchy.hammockPct = 10;
    switchy.switchCases = 8;
    presets.push_back({"switchy", switchy});

    GeneratorShape melded = d;
    melded.diamondPct = 60;
    melded.trianglePct = 15;
    melded.hammockPct = 10;
    melded.meldPct = 90;
    presets.push_back({"melded", melded});

    GeneratorShape unfold = d;
    unfold.helperFunctions = 1;
    unfold.unfoldDepth = 8;
    presets.push_back({"unfold", unfold});

    GeneratorShape irreducible = d;
    irreducible.irreducibleEdges = 3;
    presets.push_back({"irreducible", irreducible});

    // Small and fast to prepare: the throughput-bench tier.
    GeneratorShape bench = d;
    bench.helperFunctions = 1;
    bench.regions = 2;
    bench.maxDepth = 2;
    bench.exprDepth = 2;
    bench.maxLoopTrip = 3;
    presets.push_back({"bench", bench});

    return presets;
}

const std::vector<Preset> &
presets()
{
    static const std::vector<Preset> all = makePresets();
    return all;
}

} // namespace

void
GeneratorShape::clamp()
{
    helperFunctions = clampInt(helperFunctions, 0, 8);
    regions = clampInt(regions, 1, 64);
    maxDepth = clampInt(maxDepth, 1, 8);
    // exprDepth > 4 voids the signed-overflow headroom analysis in the
    // file comment of generator.h; keep the cap in sync with it.
    exprDepth = clampInt(exprDepth, 1, 4);
    maxLoopTrip = clampInt(maxLoopTrip, 1, 64);
    stmtsMax = clampInt(stmtsMax, 1, 8);
    switchPct = clampInt(switchPct, 0, 100);
    diamondPct = clampInt(diamondPct, 0, 100);
    trianglePct = clampInt(trianglePct, 0, 100);
    hammockPct = clampInt(hammockPct, 0, 100);
    meldPct = clampInt(meldPct, 0, 100);
    switchCases = clampInt(switchCases, 2, 16);
    unfoldDepth = clampInt(unfoldDepth, 0, 12);
    irreducibleEdges = clampInt(irreducibleEdges, 0, 8);
    mainParams = clampInt(mainParams, 1, 4);
}

bool
namedShape(const std::string &name, GeneratorShape *out)
{
    for (const Preset &p : presets()) {
        if (name == p.name) {
            *out = p.shape;
            return true;
        }
    }
    return false;
}

const std::vector<std::string> &
shapeNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const Preset &p : presets())
            v.push_back(p.name);
        return v;
    }();
    return names;
}

bool
parseGenSpec(const std::string &spec, uint64_t *seed,
             GeneratorShape *shape, std::string *err)
{
    GeneratorShape result = *shape;
    uint64_t result_seed = *seed;

    std::vector<std::pair<std::string, std::string>> pairs;
    size_t at = 0;
    while (at < spec.size()) {
        size_t comma = spec.find(',', at);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(at, comma - at);
        at = comma + 1;
        if (item.empty())
            continue;
        size_t colon = item.find(':');
        if (colon == std::string::npos) {
            if (err)
                *err = "expected key:value, got '" + item + "'";
            return false;
        }
        pairs.emplace_back(item.substr(0, colon),
                           item.substr(colon + 1));
    }

    // The preset applies first regardless of position, so
    // "seed:5,funcs:9,shape:deep" keeps funcs = 9.
    for (const auto &[key, value] : pairs) {
        if (key != "shape")
            continue;
        if (!namedShape(value, &result)) {
            if (err)
                *err = "unknown shape '" + value + "'";
            return false;
        }
    }

    for (const auto &[key, value] : pairs) {
        if (key == "shape")
            continue;
        char *end = nullptr;
        errno = 0;
        long long num = std::strtoll(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') {
            if (err)
                *err = "bad number '" + value + "' for key '" + key +
                       "'";
            return false;
        }
        // strtoll saturates at LLONG_MIN/MAX with ERANGE; a saturated
        // seed would silently change which program the spec names, and
        // a shape value outside int range would wrap in the cast
        // below. Both are spec errors, reported like any other.
        if (errno == ERANGE ||
            (key != "seed" && (num < INT_MIN || num > INT_MAX))) {
            if (err)
                *err = "number out of range '" + value + "' for key '" +
                       key + "'";
            return false;
        }
        int v = static_cast<int>(num);
        if (key == "seed") result_seed = static_cast<uint64_t>(num);
        else if (key == "funcs") result.helperFunctions = v;
        else if (key == "regions") result.regions = v;
        else if (key == "depth") result.maxDepth = v;
        else if (key == "expr") result.exprDepth = v;
        else if (key == "trip") result.maxLoopTrip = v;
        else if (key == "stmts") result.stmtsMax = v;
        else if (key == "switch") result.switchPct = v;
        else if (key == "diamond") result.diamondPct = v;
        else if (key == "triangle") result.trianglePct = v;
        else if (key == "hammock") result.hammockPct = v;
        else if (key == "meld") result.meldPct = v;
        else if (key == "cases") result.switchCases = v;
        else if (key == "unfold") result.unfoldDepth = v;
        else if (key == "irr") result.irreducibleEdges = v;
        else if (key == "params") result.mainParams = v;
        else {
            if (err)
                *err = "unknown key '" + key + "'";
            return false;
        }
    }

    result.clamp();
    *shape = result;
    *seed = result_seed;
    return true;
}

std::string
genSpecString(uint64_t seed, const GeneratorShape &shape)
{
    std::ostringstream os;
    os << "seed:" << seed
       << ",funcs:" << shape.helperFunctions
       << ",regions:" << shape.regions
       << ",depth:" << shape.maxDepth
       << ",expr:" << shape.exprDepth
       << ",trip:" << shape.maxLoopTrip
       << ",stmts:" << shape.stmtsMax
       << ",switch:" << shape.switchPct
       << ",diamond:" << shape.diamondPct
       << ",triangle:" << shape.trianglePct
       << ",hammock:" << shape.hammockPct
       << ",meld:" << shape.meldPct
       << ",cases:" << shape.switchCases
       << ",unfold:" << shape.unfoldDepth
       << ",irr:" << shape.irreducibleEdges
       << ",params:" << shape.mainParams;
    return os.str();
}

GeneratedProgram
generateTinyC(uint64_t seed, const GeneratorShape &shape_in)
{
    GeneratorShape shape = shape_in;
    shape.clamp();

    GeneratedProgram gen;
    gen.seed = seed;
    gen.shape = shape;

    Emitter emitter(seed, shape);
    gen.source = emitter.emitProgram();

    // Reference input vector, drawn from an independent stream so the
    // source bytes do not depend on how many args are consumed.
    Rng args_rng(seed ^ 0xa1c5ull);
    for (int p = 0; p < shape.mainParams; ++p)
        gen.args.push_back(args_rng.range(-9999, 9999));
    return gen;
}

int
injectIrreducibleEdges(Program &program, uint64_t seed, int count)
{
    Function &fn = program.fn;
    Rng rng(seed ^ 0x1d2e3f4a5b6c7d8eull);
    int injected = 0;

    for (int round = 0; injected < count && round < count * 4;
         ++round) {
        std::vector<BlockId> rpo = fn.reversePostOrder();
        std::vector<size_t> rpoIndex(fn.blockTableSize(), SIZE_MAX);
        for (size_t i = 0; i < rpo.size(); ++i)
            rpoIndex[rpo[i]] = i;

        LoopInfo loops(fn);

        // Targets: a non-header block of some natural loop, i.e. a
        // second entry into that loop once an outside edge lands on it.
        struct Target
        {
            BlockId block;
            size_t loopIdx;
        };
        std::vector<Target> targets;
        for (size_t li = 0; li < loops.loops().size(); ++li) {
            const Loop &loop = loops.loops()[li];
            for (BlockId b : loop.blocks) {
                if (b != loop.header && rpoIndex[b] != SIZE_MAX)
                    targets.push_back({b, li});
            }
        }
        if (targets.empty())
            return injected;

        Target tgt = targets[rng.below(targets.size())];
        const Loop &loop = loops.loops()[tgt.loopIdx];

        // Sources: an unpredicated branch strictly earlier in RPO,
        // outside the target's loop but inside SOME loop. The in-a-
        // loop requirement is load-bearing twice over: the fuel
        // counter below is then multi-def (entry init + in-loop
        // increment), so no constant folder can prove the diversion
        // always taken and delete the original path out from under
        // the target loop's live-ins; and the branch genuinely
        // re-executes, so the fuel actually meters something.
        struct Source
        {
            BlockId block;
            size_t instIdx;
        };
        std::vector<Source> sources;
        for (BlockId u : rpo) {
            if (rpoIndex[u] >= rpoIndex[tgt.block] || u == tgt.block)
                continue;
            if (std::binary_search(loop.blocks.begin(),
                                   loop.blocks.end(), u))
                continue;
            if (loops.innermostContaining(u) == nullptr)
                continue;
            const BasicBlock *bb = fn.block(u);
            for (size_t idx : bb->branchIndices()) {
                const Instruction &inst = bb->insts[idx];
                if (inst.op == Opcode::Br && !inst.pred.valid() &&
                    inst.target != tgt.block) {
                    sources.push_back({u, idx});
                }
            }
        }
        if (sources.empty())
            continue;

        // Split the branch on a fuel counter: the first two executions
        // divert through the irreducible edge, every later one follows
        // the original target. The CFG is statically irreducible (the
        // loop has a second entry), but dynamically the diversion is a
        // bounded prefix — afterwards control follows the original
        // structured, terminating flow. (A plain retarget is NOT safe:
        // it severs the original edge, and a loop's exit path can then
        // feed straight back into the new entry, looping forever even
        // though every cycle crosses the counter's latch.)
        Source src = sources[rng.below(sources.size())];
        Vreg fuel = fn.newVreg();
        Vreg divert = fn.newVreg();
        // Seed the fuel from memory, not an immediate: entry runs
        // before any store, so this reads mem[0]'s initial 0, but a
        // load is an opaque value to GVN — no pass can fold the
        // diversion test to a constant even if unrolling straight-
        // lines the increments.
        BasicBlock *entry = fn.block(fn.entry());
        entry->insts.insert(
            entry->insts.begin(),
            Instruction::load(fuel, Operand::makeImm(0),
                              Operand::makeImm(0)));
        if (src.block == fn.entry())
            ++src.instIdx; // the load above shifted the branch

        BasicBlock *sb = fn.block(src.block);
        BlockId original = sb->insts[src.instIdx].target;
        double freq = sb->insts[src.instIdx].freq;
        auto at = sb->insts.begin() +
                  static_cast<ptrdiff_t>(src.instIdx);
        at = sb->insts.insert(
            at, Instruction::binary(Opcode::Add, fuel,
                                    Operand::makeReg(fuel),
                                    Operand::makeImm(1)));
        at = sb->insts.insert(
            at + 1, Instruction::binary(Opcode::Tlt, divert,
                                        Operand::makeReg(fuel),
                                        Operand::makeImm(3)));
        ++at;
        *at = Instruction::br(tgt.block,
                              Predicate::onReg(divert, true), freq);
        sb->insts.insert(
            at + 1,
            Instruction::br(original,
                            Predicate::onReg(divert, false), freq));
        ++injected;
    }
    return injected;
}

Program
buildGenerated(const GeneratedProgram &generated)
{
    TranslationUnit unit = parseTinyC(generated.source);
    Program program = lowerToIR(unit);
    program.defaultArgs = generated.args;
    if (generated.shape.irreducibleEdges > 0) {
        injectIrreducibleEdges(program, generated.seed,
                               generated.shape.irreducibleEdges);
    }
    return program;
}

} // namespace chf
