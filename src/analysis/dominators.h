/**
 * @file
 * Dominator tree via the Cooper-Harvey-Kennedy iterative algorithm.
 */

#ifndef CHF_ANALYSIS_DOMINATORS_H
#define CHF_ANALYSIS_DOMINATORS_H

#include <vector>

#include "ir/function.h"

namespace chf {

/** Immediate-dominator tree over the blocks reachable from the entry. */
class DominatorTree
{
  public:
    explicit DominatorTree(const Function &fn);

    /** Immediate dominator; kNoBlock for the entry or unreachable. */
    BlockId idom(BlockId id) const;

    /** True if @p a dominates @p b (reflexive). */
    bool dominates(BlockId a, BlockId b) const;

    /** True if @p id is reachable from the entry. */
    bool reachable(BlockId id) const;

    /** Reverse post-order of reachable blocks (entry first). */
    const std::vector<BlockId> &rpo() const { return order; }

    /** Dominator-tree children of @p id. */
    std::vector<BlockId> children(BlockId id) const;

  private:
    std::vector<BlockId> idoms;     // by block id
    std::vector<uint32_t> rpoIndex; // by block id; UINT32_MAX unreachable
    std::vector<BlockId> order;
    BlockId entry;
};

} // namespace chf

#endif // CHF_ANALYSIS_DOMINATORS_H
